package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"daisy/internal/bgclean"
	"daisy/internal/cost"
	"daisy/internal/dc"
	"daisy/internal/ptable"
	"daisy/internal/schema"
	"daisy/internal/uncertain"
	"daisy/internal/value"
	"daisy/internal/vfs"
	"daisy/internal/wal"
)

// This file encodes and decodes the session's durable forms: the per-batch
// WAL records the writer appends under its mutex, and the full-state
// checkpoint images the background checkpointer publishes. The framing,
// torn-tail, and retention mechanics live in internal/wal; this file owns
// only what the bytes mean.
//
// Replay correctness rests on one invariant: applyOne is a deterministic
// function of (pre-state, request). Apply records therefore store requests
// *post-filter* — after filterCheckedFD dropped duplicate groups — together
// with the effective costRecord bit the original apply resolved. Replaying
// them from the identical pre-state re-filters to a no-op and charges the
// cost model exactly as the original run did, so the recovered state is
// byte-identical without logging any pre-state. Requests that carried only
// derivable side state (DC estimate caches, which EstimateErrors recomputes
// from originals) are not logged at all; that keeps a 1-tuple fix O(delta)
// bytes on disk regardless of relation size.

// WAL record types.
const (
	recRegister byte = 1 // Register: table name + full pristine image
	recRule     byte = 2 // AddRule: constraint text (name@table: body)
	recReplace  byte = 3 // ReplaceTable: table name + full probabilistic image
	recApply    byte = 4 // one coalesced apply batch: deltas + marks + cost
	recSweep    byte = 5 // background sweep enqueued for (table, rule)
)

// checkpoint payload version.
const ckptVersion byte = 1

// sweepRef names one live background sweep for checkpoint/replay resume.
type sweepRef struct {
	table, rule string
}

// ---------------------------------------------------------------------------
// primitives

func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

func appendVarint(buf []byte, v int64) []byte { return binary.AppendVarint(buf, v) }

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

func appendValue(buf []byte, v value.Value) []byte {
	buf = append(buf, byte(v.Kind()))
	switch v.Kind() {
	case value.Null:
	case value.Int:
		buf = appendVarint(buf, v.Int())
	case value.Float:
		buf = appendFloat(buf, v.Float())
	case value.String:
		buf = appendString(buf, v.Str())
	}
	return buf
}

func appendCell(buf []byte, c *uncertain.Cell) []byte {
	buf = appendValue(buf, c.Orig)
	buf = appendUvarint(buf, uint64(len(c.Candidates)))
	for _, cand := range c.Candidates {
		buf = appendValue(buf, cand.Val)
		buf = appendFloat(buf, cand.Prob)
		buf = appendVarint(buf, int64(cand.World))
		buf = appendVarint(buf, int64(cand.Support))
	}
	buf = appendUvarint(buf, uint64(len(c.Ranges)))
	for _, r := range c.Ranges {
		buf = appendVarint(buf, int64(r.Op))
		buf = appendValue(buf, r.Bound)
		buf = appendFloat(buf, r.Prob)
		buf = appendVarint(buf, int64(r.World))
	}
	return buf
}

// dec is a cursor over one record payload; the first decode error sticks and
// every subsequent read returns zero values, so decoders read linearly and
// check err once.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("core: corrupt durable record: truncated %s", what)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *dec) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail("string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) value() value.Value {
	switch value.Kind(d.byte()) {
	case value.Int:
		return value.NewInt(d.varint())
	case value.Float:
		return value.NewFloat(d.float())
	case value.String:
		return value.NewString(d.string())
	default:
		return value.NewNull()
	}
}

func (d *dec) cell() uncertain.Cell {
	c := uncertain.Cell{Orig: d.value()}
	if n := d.uvarint(); n > 0 && d.err == nil {
		c.Candidates = make([]uncertain.Candidate, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			c.Candidates = append(c.Candidates, uncertain.Candidate{
				Val: d.value(), Prob: d.float(),
				World: int(d.varint()), Support: int(d.varint()),
			})
		}
	}
	if n := d.uvarint(); n > 0 && d.err == nil {
		c.Ranges = make([]uncertain.RangeCandidate, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			c.Ranges = append(c.Ranges, uncertain.RangeCandidate{
				RangeBound: uncertain.RangeBound{Op: dc.Op(d.varint()), Bound: d.value()},
				Prob:       d.float(), World: int(d.varint()),
			})
		}
	}
	return c
}

func (d *dec) mapKey() value.MapKey {
	if d.err != nil {
		return value.MapKey{}
	}
	k, rest, err := value.DecodeMapKey(d.b)
	if err != nil {
		d.err = err
		return value.MapKey{}
	}
	d.b = rest
	return k
}

// ---------------------------------------------------------------------------
// relation image (register / replace records, checkpoint tables)

func appendPTImage(buf []byte, pt *ptable.PTable) []byte {
	buf = appendString(buf, pt.Name)
	sc := pt.Schema
	buf = appendUvarint(buf, uint64(sc.Len()))
	for i := 0; i < sc.Len(); i++ {
		col := sc.Col(i)
		buf = appendString(buf, col.Name)
		buf = append(buf, byte(col.Kind))
	}
	srcName, srcIDs := pt.LineageSource()
	if srcIDs != nil {
		buf = append(buf, 1)
		buf = appendString(buf, srcName)
		buf = appendUvarint(buf, uint64(len(srcIDs)))
		for _, id := range srcIDs {
			buf = appendVarint(buf, id)
		}
	} else {
		buf = append(buf, 0)
	}
	buf = appendUvarint(buf, uint64(pt.Len()))
	for _, t := range pt.Rows() {
		buf = appendVarint(buf, t.ID)
		if t.Lineage != nil {
			buf = append(buf, 1)
			buf = appendUvarint(buf, uint64(len(t.Lineage)))
			names := make([]string, 0, len(t.Lineage))
			for name := range t.Lineage {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				buf = appendString(buf, name)
				ids := t.Lineage[name]
				buf = appendUvarint(buf, uint64(len(ids)))
				for _, id := range ids {
					buf = appendVarint(buf, id)
				}
			}
		} else {
			buf = append(buf, 0)
		}
		for i := range t.Cells {
			buf = appendCell(buf, &t.Cells[i])
		}
	}
	return buf
}

func (d *dec) ptImage() *ptable.PTable {
	name := d.string()
	ncols := d.uvarint()
	cols := make([]schema.Column, 0, ncols)
	for i := uint64(0); i < ncols && d.err == nil; i++ {
		cols = append(cols, schema.Column{Name: d.string(), Kind: value.Kind(d.byte())})
	}
	if d.err != nil {
		return nil
	}
	sc, err := schema.New(cols...)
	if err != nil {
		d.err = err
		return nil
	}
	pt := ptable.New(name, sc)
	var srcName string
	var srcIDs []int64
	if d.byte() == 1 {
		srcName = d.string()
		n := d.uvarint()
		srcIDs = make([]int64, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			srcIDs = append(srcIDs, d.varint())
		}
	}
	ntuples := d.uvarint()
	if d.err != nil {
		return nil
	}
	pt.Reserve(int(ntuples))
	width := sc.Len()
	for i := uint64(0); i < ntuples && d.err == nil; i++ {
		t := &ptable.Tuple{ID: d.varint(), Cells: make([]uncertain.Cell, width)}
		if d.byte() == 1 {
			n := d.uvarint()
			t.Lineage = make(map[string][]int64, n)
			for j := uint64(0); j < n && d.err == nil; j++ {
				lname := d.string()
				nids := d.uvarint()
				ids := make([]int64, 0, nids)
				for k := uint64(0); k < nids && d.err == nil; k++ {
					ids = append(ids, d.varint())
				}
				t.Lineage[lname] = ids
			}
		}
		for j := 0; j < width; j++ {
			t.Cells[j] = d.cell()
		}
		if d.err == nil {
			pt.Append(t)
		}
	}
	if d.err != nil {
		return nil
	}
	if srcIDs != nil {
		pt.SetLineageSource(srcName, srcIDs)
	}
	return pt
}

// ---------------------------------------------------------------------------
// WAL records

// ruleText renders a constraint in the form dc.Parse round-trips, including
// the @table binding Constraint.String omits.
func ruleText(c *dc.Constraint) string {
	s := c.String()
	if c.Table == "" || c.Name == "" {
		return s
	}
	body := strings.TrimSpace(strings.TrimPrefix(s, c.Name+":"))
	return c.Name + "@" + c.Table + ": " + body
}

func encodeRegisterRecord(name string, pt *ptable.PTable) []byte {
	buf := append(make([]byte, 0, 256), recRegister)
	buf = appendString(buf, name)
	return appendPTImage(buf, pt)
}

func encodeReplaceRecord(name string, pt *ptable.PTable) []byte {
	buf := append(make([]byte, 0, 256), recReplace)
	buf = appendString(buf, name)
	return appendPTImage(buf, pt)
}

func encodeRuleRecord(c *dc.Constraint) []byte {
	return appendString([]byte{recRule}, ruleText(c))
}

func encodeSweepRecord(table, rule string) []byte {
	return appendString(appendString([]byte{recSweep}, table), rule)
}

const (
	applyFlagFD       byte = 1 << 0
	applyFlagCost     byte = 1 << 1
	applyFlagSwitched byte = 1 << 2
	applyFlagDelta    byte = 1 << 3
)

// loggedReq is one applied request as the WAL stores it: post-filter fields
// plus the effective costRecord bit applyOne resolved.
type loggedReq struct {
	req        *applyReq
	costRecord bool
}

// encodeApplyRecord renders one apply batch. Requests that ended up pure
// no-ops (estimate-only caches, fully coalesced duplicates without a switch
// mark) are skipped; a batch with nothing durable returns nil and appends no
// record at all.
func encodeApplyRecord(reqs []loggedReq) []byte {
	durable := reqs[:0:0]
	for _, lr := range reqs {
		r := lr.req
		hasDelta := r.delta != nil && r.delta.Len() > 0
		if !hasDelta && len(r.groups) == 0 && len(r.tuples) == 0 && !lr.costRecord && !r.markSwitched {
			continue
		}
		durable = append(durable, lr)
	}
	if len(durable) == 0 {
		return nil
	}
	buf := append(make([]byte, 0, 256), recApply)
	buf = appendUvarint(buf, uint64(len(durable)))
	for _, lr := range durable {
		r := lr.req
		buf = appendString(buf, r.table)
		buf = appendString(buf, r.rule)
		var flags byte
		if r.isFD {
			flags |= applyFlagFD
		}
		if lr.costRecord {
			flags |= applyFlagCost
		}
		if r.markSwitched {
			flags |= applyFlagSwitched
		}
		hasDelta := r.delta != nil && r.delta.Len() > 0
		if hasDelta {
			flags |= applyFlagDelta
		}
		buf = append(buf, flags)
		if hasDelta {
			buf = appendUvarint(buf, uint64(len(r.delta.Cells)))
			for id, cols := range r.delta.Cells {
				buf = appendVarint(buf, id)
				buf = appendUvarint(buf, uint64(len(cols)))
				for i := range cols {
					buf = appendUvarint(buf, uint64(cols[i].Col))
					buf = appendCell(buf, &cols[i].Cell)
				}
			}
		}
		buf = appendUvarint(buf, uint64(len(r.groups)))
		for _, k := range r.groups {
			buf = k.AppendBinary(buf)
		}
		buf = appendUvarint(buf, uint64(len(r.tuples)))
		for _, id := range r.tuples {
			buf = appendVarint(buf, id)
		}
		if lr.costRecord {
			buf = appendUvarint(buf, uint64(r.costQi))
			buf = appendUvarint(buf, uint64(r.costEi))
			buf = appendUvarint(buf, uint64(r.costEpsi))
		}
	}
	return buf
}

// decodeApplyRecord rebuilds the batch's requests. idents are left zero; the
// replay path stamps each request with the current registration identity of
// its table (only requests that actually applied were logged, so the table
// the record names is, at this point of the replay, the registration the
// original apply targeted).
func (d *dec) applyRecord() []*applyReq {
	n := d.uvarint()
	reqs := make([]*applyReq, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		r := &applyReq{table: d.string(), rule: d.string()}
		flags := d.byte()
		r.isFD = flags&applyFlagFD != 0
		r.costRecord = flags&applyFlagCost != 0
		r.markSwitched = flags&applyFlagSwitched != 0
		if flags&applyFlagDelta != 0 {
			delta := ptable.NewDelta(r.table)
			ncells := d.uvarint()
			for j := uint64(0); j < ncells && d.err == nil; j++ {
				id := d.varint()
				ncols := d.uvarint()
				for k := uint64(0); k < ncols && d.err == nil; k++ {
					col := int(d.uvarint())
					delta.Set(id, col, d.cell())
				}
			}
			r.delta = delta
		}
		if ng := d.uvarint(); ng > 0 && d.err == nil {
			r.groups = make([]value.MapKey, 0, ng)
			for j := uint64(0); j < ng && d.err == nil; j++ {
				r.groups = append(r.groups, d.mapKey())
			}
		}
		if nt := d.uvarint(); nt > 0 && d.err == nil {
			r.tuples = make([]int64, 0, nt)
			for j := uint64(0); j < nt && d.err == nil; j++ {
				r.tuples = append(r.tuples, d.varint())
			}
		}
		if r.costRecord {
			r.costQi = int(d.uvarint())
			r.costEi = int(d.uvarint())
			r.costEpsi = int(d.uvarint())
		}
		reqs = append(reqs, r)
	}
	return reqs
}

// ---------------------------------------------------------------------------
// checkpoint image

// encodeCheckpoint renders the full session state of one published snapshot
// plus the live background sweeps: everything Open needs to rebuild a
// session without any WAL prefix. Derived structures (FD indexes, optimizer
// stats, DC estimate caches) are not stored — they are deterministic
// functions of original values and rebuild on recovery.
func encodeCheckpoint(snap *snapshot, sweeps []sweepRef) []byte {
	buf := []byte{ckptVersion}
	buf = appendUvarint(buf, snap.epoch)
	buf = appendUvarint(buf, uint64(len(snap.rules)))
	for _, c := range snap.rules {
		buf = appendString(buf, ruleText(c))
	}
	names := make([]string, 0, len(snap.tables))
	for name := range snap.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	buf = appendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		st := snap.tables[name]
		buf = appendString(buf, name)
		buf = appendPTImage(buf, st.pt)
		buf = appendUvarint(buf, uint64(len(st.rules)))
		for _, c := range st.rules {
			buf = appendString(buf, c.Name)
		}
		if st.cost != nil {
			cs := st.cost.State()
			buf = append(buf, 1)
			buf = appendUvarint(buf, uint64(cs.N))
			buf = appendUvarint(buf, uint64(cs.Epsilon))
			buf = appendFloat(buf, cs.P)
			buf = appendUvarint(buf, uint64(cs.Seen))
			buf = appendUvarint(buf, uint64(cs.CleanedErr))
			buf = appendFloat(buf, cs.CumIncremental)
			buf = appendUvarint(buf, uint64(cs.Queries))
			if cs.Switched {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		} else {
			buf = append(buf, 0)
		}
		buf = appendUvarint(buf, uint64(len(st.checkedGroups)))
		for _, rule := range sortedKeys(st.checkedGroups) {
			set := st.checkedGroups[rule]
			buf = appendString(buf, rule)
			buf = appendUvarint(buf, uint64(len(set)))
			for k := range set {
				buf = k.AppendBinary(buf)
			}
		}
		buf = appendUvarint(buf, uint64(len(st.checkedTuples)))
		for _, rule := range sortedKeys(st.checkedTuples) {
			set := st.checkedTuples[rule]
			buf = appendString(buf, rule)
			buf = appendUvarint(buf, uint64(len(set)))
			for id := range set {
				buf = appendVarint(buf, id)
			}
		}
	}
	buf = appendUvarint(buf, uint64(len(sweeps)))
	for _, sw := range sweeps {
		buf = appendString(buf, sw.table)
		buf = appendString(buf, sw.rule)
	}
	return buf
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// decodeCheckpoint rebuilds the snapshot (fresh registration identities,
// rebuilt indexes and stats) and returns it with the live-sweep list.
func decodeCheckpoint(payload []byte) (*snapshot, []sweepRef, error) {
	d := &dec{b: payload}
	if v := d.byte(); v != ckptVersion {
		return nil, nil, fmt.Errorf("core: unsupported checkpoint version %d", v)
	}
	snap := &snapshot{epoch: d.uvarint(), tables: make(map[string]*tableState)}
	nrules := d.uvarint()
	for i := uint64(0); i < nrules && d.err == nil; i++ {
		c, err := dc.Parse(d.string())
		if err != nil {
			if d.err == nil {
				d.err = err
			}
			break
		}
		snap.rules = append(snap.rules, c)
	}
	byName := make(map[string]*dc.Constraint, len(snap.rules))
	for _, c := range snap.rules {
		byName[c.Name] = c
	}
	ntables := d.uvarint()
	for i := uint64(0); i < ntables && d.err == nil; i++ {
		name := d.string()
		pt := d.ptImage()
		if d.err != nil {
			break
		}
		st := newTableState(pt)
		nbound := d.uvarint()
		for j := uint64(0); j < nbound && d.err == nil; j++ {
			rname := d.string()
			c, ok := byName[rname]
			if !ok {
				d.err = fmt.Errorf("core: checkpoint binds unknown rule %q on %q", rname, name)
				break
			}
			st.rules = append(st.rules, c)
			if spec, isFD := c.AsFD(); isFD {
				st.fdIdx[c.Name] = newFDIndex(pt, spec)
			}
		}
		if len(st.rules) > 0 {
			st.stats = collectStats(st)
		}
		if d.byte() == 1 {
			cs := cost.State{
				N: int(d.uvarint()), Epsilon: int(d.uvarint()), P: d.float(),
				Seen: int(d.uvarint()), CleanedErr: int(d.uvarint()),
				CumIncremental: d.float(), Queries: int(d.uvarint()),
				Switched: d.byte() == 1,
			}
			st.cost = cost.FromState(cs)
		}
		ncg := d.uvarint()
		for j := uint64(0); j < ncg && d.err == nil; j++ {
			rule := d.string()
			nkeys := d.uvarint()
			set := make(map[value.MapKey]bool, nkeys)
			for k := uint64(0); k < nkeys && d.err == nil; k++ {
				set[d.mapKey()] = true
			}
			st.checkedGroups[rule] = set
		}
		nct := d.uvarint()
		for j := uint64(0); j < nct && d.err == nil; j++ {
			rule := d.string()
			nids := d.uvarint()
			set := make(map[int64]bool, nids)
			for k := uint64(0); k < nids && d.err == nil; k++ {
				set[d.varint()] = true
			}
			st.checkedTuples[rule] = set
		}
		snap.tables[name] = st
	}
	nsweeps := d.uvarint()
	var sweeps []sweepRef
	for i := uint64(0); i < nsweeps && d.err == nil; i++ {
		sweeps = append(sweeps, sweepRef{table: d.string(), rule: d.string()})
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	return snap, sweeps, nil
}

// ---------------------------------------------------------------------------
// state fingerprint

// stateFingerprint renders everything durable about a snapshot canonically:
// per-table probabilistic state, checked-set bookkeeping, cost-model state,
// bound rules, and the global rule list. Registration identities, epoch
// counters, and derived caches (FD indexes, stats, DC estimates) are
// excluded — they are session-local or recomputed. The crash-injection
// tests assert a recovered session fingerprints byte-identically to the
// uninterrupted oracle run.
func stateFingerprint(snap *snapshot) string {
	var b strings.Builder
	names := make([]string, 0, len(snap.tables))
	for name := range snap.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := snap.tables[name]
		fmt.Fprintf(&b, "== table %s\n", name)
		b.WriteString(st.pt.Fingerprint())
		for _, c := range st.rules {
			fmt.Fprintf(&b, "rule %s\n", c.Name)
		}
		for _, rule := range sortedKeys(st.checkedGroups) {
			set := st.checkedGroups[rule]
			keys := make([]string, 0, len(set))
			for k := range set {
				keys = append(keys, fmt.Sprintf("%x", k.AppendBinary(nil)))
			}
			sort.Strings(keys)
			fmt.Fprintf(&b, "checkedGroups[%s]=%s\n", rule, strings.Join(keys, ","))
		}
		for _, rule := range sortedKeys(st.checkedTuples) {
			set := st.checkedTuples[rule]
			ids := make([]int64, 0, len(set))
			for id := range set {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			fmt.Fprintf(&b, "checkedTuples[%s]=%v\n", rule, ids)
		}
		if st.cost != nil {
			fmt.Fprintf(&b, "cost=%+v\n", st.cost.State())
		}
	}
	for _, c := range snap.rules {
		fmt.Fprintf(&b, "rule: %s\n", ruleText(c))
	}
	return b.String()
}

// StateFingerprint renders the current epoch's durable state canonically —
// the comparison unit of the crash-recovery tests and the durability
// experiment in cmd/daisy-bench.
func (s *Session) StateFingerprint() string {
	return stateFingerprint(s.w.current())
}

// ---------------------------------------------------------------------------
// checkpointer

// checkpointer publishes full-state checkpoints in the background, rotating
// and pruning the WAL behind each one — and, when the session has degraded,
// runs the re-attach cycle: a successful full checkpoint supersedes the
// holed WAL history, so the log can rotate to a fresh file and resume. It
// holds the writer and the bgclean scheduler — never the Session — so a
// dropped session can still be finalized while the goroutine is parked.
type checkpointer struct {
	w             *writer
	fs            vfs.FS
	dir           string
	mode          SyncMode
	threshold     int64
	reattachEvery time.Duration
	sched         *bgclean.Scheduler

	quit     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	started  bool

	lastAttempt time.Time // re-attach pacing; run goroutine only

	mu      sync.Mutex // serializes whole checkpoint cycles
	lastErr error
}

func newCheckpointer(w *writer, sched *bgclean.Scheduler, opts *Options) *checkpointer {
	return &checkpointer{
		w: w, sched: sched, fs: opts.FS, dir: opts.Dir, mode: opts.Sync,
		threshold: opts.CheckpointBytes, reattachEvery: opts.ReattachInterval,
		quit: make(chan struct{}), done: make(chan struct{}),
	}
}

// start launches the automatic trigger loop (skipped when automatic
// checkpointing is disabled; manual Session.Checkpoint still works, and is
// then also the only path out of degraded mode).
func (c *checkpointer) start() {
	if c.threshold <= 0 {
		return
	}
	c.started = true
	go c.run()
}

func (c *checkpointer) run() {
	defer close(c.done)
	// The ticker drives degraded-mode re-attach attempts even when no
	// traffic nudges the loop — a fail-closed tenant with its writes
	// rejected must still find its way back to healthy.
	tick := time.NewTicker(c.reattachEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.w.ckptNudge:
			if c.w.durabilityState() == DurabilityDegraded {
				c.tryReattach()
			} else if c.w.logTail() >= c.threshold {
				_ = c.checkpoint()
			}
		case <-tick.C:
			if c.w.durabilityState() == DurabilityDegraded {
				c.tryReattach()
			}
		case <-c.quit:
			return
		}
	}
}

// tryReattach runs a checkpoint cycle to exit degraded mode, paced by
// reattachEvery so a hard-down disk is not hammered with full-state writes
// on every nudge.
func (c *checkpointer) tryReattach() {
	if time.Since(c.lastAttempt) < c.reattachEvery {
		return
	}
	c.lastAttempt = time.Now()
	_ = c.checkpoint()
}

// stop halts the trigger loop and waits for an in-flight checkpoint cycle to
// finish, so Session.Close can close the log without racing a checkpoint
// append. Idempotent.
func (c *checkpointer) stop() {
	c.stopOnce.Do(func() {
		close(c.quit)
		if c.started {
			<-c.done
		}
		// Barrier: an in-flight checkpoint() holds c.mu until its writes end.
		c.mu.Lock()
		c.mu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	})
}

// errState returns the last checkpoint failure.
func (c *checkpointer) errState() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastErr
}

// checkpoint captures (snapshot, lastLSN) atomically under the writer mutex
// — appends publish their snapshot before releasing it, so the image covers
// exactly the records up to lastLSN — writes the checkpoint file, rotates
// the log (or, when degraded, re-attaches a fresh one), and prunes covered
// files. Safe to run concurrently with appends: records landing after
// lastLSN stay in un-pruned files and replay on top. Capture waits out any
// live retry episode first (see captureForCheckpoint) — a flush racing the
// capture would put effects inside the image AND records above its LSN.
func (c *checkpointer) checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap, lsn, degraded := c.w.captureForCheckpoint()
	var sweeps []sweepRef
	if c.sched != nil {
		for _, st := range c.sched.Status() {
			if !st.State.Terminal() {
				sweeps = append(sweeps, sweepRef{table: st.Table, rule: st.Rule})
			}
		}
	}
	payload := encodeCheckpoint(snap, sweeps)
	if err := wal.WriteCheckpointFS(c.fs, c.dir, lsn, payload); err != nil {
		c.lastErr = err
		c.w.instr.ckptFailures.Inc()
		return err
	}
	c.w.instr.checkpoints.Inc()
	if degraded {
		// The checkpoint covers the whole degraded era (memory state included),
		// superseding the holed journal: re-attach and resume logging.
		if err := c.reattach(lsn); err != nil {
			c.lastErr = err
			c.w.instr.ckptFailures.Inc()
			return err
		}
	} else {
		c.w.mu.Lock()
		if c.w.wlog != nil {
			_ = c.w.wlog.Rotate()
		}
		c.w.mu.Unlock()
	}
	st, err := wal.PruneFS(c.fs, c.dir, lsn)
	if err != nil {
		c.lastErr = err
		return err
	}
	if st.Failed > 0 {
		// Surface stuck files: they grow the directory forever, and only
		// cost replay time — so count and report, don't fail the cycle.
		c.w.instr.pruneFailures.Add(int64(st.Failed))
		c.lastErr = fmt.Errorf("core: wal prune left %d file(s) behind: %w", st.Failed, st.FirstErr)
	} else {
		c.lastErr = nil
	}
	return nil
}

// reattach opens a fresh append view of the directory after a degraded
// period and rotates it so post-reattach records land in a fresh WAL file.
// ckLSN — the just-published checkpoint's cover — floors the LSN sequence;
// records before it were either durable (still on disk, now redundant) or
// dropped while degraded (their effects are inside the checkpoint image).
// Records *past* ckLSN are zombies — frames whose bytes landed but whose
// append was never acknowledged (fsync failed and the undo-truncate failed
// too); their effects are also inside the image, so they are trimmed away
// before the log reopens, or replay would double-apply them.
func (c *checkpointer) reattach(ckLSN uint64) error {
	if err := wal.TrimAfterFS(c.fs, c.dir, ckLSN); err != nil {
		return err
	}
	wlog, err := wal.OpenLogFS(c.fs, c.dir, c.mode, ckLSN)
	if err != nil {
		return err
	}
	if err := wlog.Rotate(); err != nil {
		wlog.Close()
		return err
	}
	wlog.SetInstruments(c.w.instr.walInstruments())
	if !c.w.reattachLog(wlog) {
		// The writer is closing (or recovered by other means): back out.
		wlog.Close()
	}
	return nil
}
