package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"daisy/internal/dc"
	"daisy/internal/schema"
	"daisy/internal/table"
	"daisy/internal/value"
	"daisy/internal/vfs"
	"daisy/internal/wal"
)

// Crash-injection harness. The oracle run executes a seeded FD+DC scenario in
// a durable directory, capturing the state fingerprint at every WAL-logged
// publish (onPublish fires under the writer mutex, so the pair (lsn,
// fingerprint) is exact). The kill loop then reconstructs, for every record
// boundary, the directory a SIGKILL at that instant would have left —
// checkpoint files published at or before the boundary plus the WAL prefix —
// reopens it, and asserts the recovered fingerprint matches the oracle's at
// that exact record.

// durableOpts is the common durable configuration of the crash tests:
// automatic checkpointing off (tests place checkpoints deterministically) and
// one worker so detection-order-dependent DC scenarios are reproducible.
func durableOpts(dir string) Options {
	return Options{Dir: dir, Strategy: StrategyIncremental, Workers: 1, CheckpointBytes: -1}
}

// captureFingerprints hooks the writer's publish path; every logged publish
// records the fingerprint the state had the instant that LSN hit the log.
// Install before any mutation.
func captureFingerprints(s *Session) map[uint64]string {
	fps := make(map[uint64]string)
	s.w.onPublish = func(lsn uint64, snap *snapshot) {
		if lsn != 0 {
			fps[lsn] = stateFingerprint(snap)
		}
	}
	return fps
}

// empTable is the general-DC half of the seeded scenario (salary/tax
// monotonicity inversions).
func empTable() *table.Table {
	sch := schema.MustNew(
		schema.Column{Name: "salary", Kind: value.Float},
		schema.Column{Name: "tax", Kind: value.Float},
	)
	tb := table.New("emp", sch)
	for i := 0; i < 20; i++ {
		tax := 0.1 + float64(i)*0.01
		if i%5 == 0 {
			tax = 0.5 - tax
		}
		tb.MustAppend(table.Row{value.NewFloat(float64(1000 + i*100)), value.NewFloat(tax)})
	}
	return tb
}

// runCrashScenario drives the seeded FD+DC workload against an open durable
// session: registrations, rule binds, FD range queries that repair, repeated
// queries that coalesce to skips, DC queries that grow the checked-tuple
// sets, and a ReplaceTable. mid, when non-nil, runs between the two query
// phases (the checkpoint tests inject a checkpoint there).
func runCrashScenario(t *testing.T, s *Session, mid func()) {
	t.Helper()
	if err := s.Register(citiesTable()); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(empTable()); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRule(dc.FD("phi", "cities", "city", "zip")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRule(dc.MustParse("psi@emp: !(t1.salary<t2.salary & t1.tax>t2.tax)")); err != nil {
		t.Fatal(err)
	}
	phase1 := []string{
		"SELECT zip, city FROM cities WHERE city = 'Los Angeles'",
		"SELECT salary FROM emp WHERE salary < 1500",
	}
	for _, q := range phase1 {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if mid != nil {
		mid()
	}
	phase2 := []string{
		"SELECT zip, city FROM cities WHERE zip = 9001", // repaired + skip mix
		"SELECT salary FROM emp WHERE salary >= 1500 AND salary < 2500",
		"SELECT salary FROM emp WHERE salary < 1500", // converging repeat
	}
	for _, q := range phase2 {
		if _, err := s.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	// Replace one relation mid-history: replay must restore the replacement,
	// not the original registration.
	small := citiesTable()
	sess2 := NewSession(Options{Strategy: StrategyIncremental})
	defer sess2.Close()
	if err := sess2.Register(small); err != nil {
		t.Fatal(err)
	}
	s.ReplaceTable("cities", sess2.Table("cities"))
	if err := s.AddRule(dc.FD("phi2", "cities", "city", "zip")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("SELECT zip, city FROM cities WHERE city = 'Los Angeles'"); err != nil {
		t.Fatal(err)
	}
}

// killDir reconstructs the directory a crash at the end of record k would
// have left: every checkpoint published at or before that LSN (a checkpoint
// file with a later LSN cannot exist yet at that instant), every WAL file
// before the record's, and the record's own file truncated at the record
// boundary.
func killDir(t *testing.T, src string, recs []wal.Record, k int) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".ckpt") {
			var lsn uint64
			if _, err := fmt.Sscanf(name, "ckpt-%016x.ckpt", &lsn); err != nil || lsn > recs[k].LSN {
				continue
			}
			copyFile(t, filepath.Join(src, name), filepath.Join(dst, name))
		}
	}
	for i := 0; i <= k; i++ {
		if recs[i].File == recs[k].File {
			// Truncate the boundary file at the record's end offset.
			buf, err := os.ReadFile(recs[k].File)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, filepath.Base(recs[k].File)), buf[:recs[k].End], 0o644); err != nil {
				t.Fatal(err)
			}
			break
		}
		if i == 0 || recs[i].File != recs[i-1].File {
			copyFile(t, recs[i].File, filepath.Join(dst, filepath.Base(recs[i].File)))
		}
	}
	return dst
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	buf, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// expectedAt returns the oracle fingerprint as of record k: the fingerprint
// captured at its LSN, or — for records that publish no state change (sweep
// markers) — at the nearest earlier logged publish.
func expectedAt(t *testing.T, fps map[uint64]string, recs []wal.Record, k int) string {
	t.Helper()
	for i := k; i >= 0; i-- {
		if fp, ok := fps[recs[i].LSN]; ok {
			return fp
		}
	}
	t.Fatalf("no oracle fingerprint at or before record %d (lsn %d)", k, recs[k].LSN)
	return ""
}

// TestDurableRoundTrip: close/reopen restores the exact state and the
// reopened session keeps serving and journaling.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	runCrashScenario(t, s, nil)
	if err := s.DurabilityError(); err != nil {
		t.Fatalf("durability degraded: %v", err)
	}
	want := s.StateFingerprint()
	s.Close()

	s2, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.StateFingerprint(); got != want {
		t.Fatalf("reopened fingerprint differs from pre-close state:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The reopened session serves and journals further work.
	if _, err := s2.Query("SELECT zip, city FROM cities WHERE zip = 10001"); err != nil {
		t.Fatal(err)
	}
	if err := s2.DurabilityError(); err != nil {
		t.Fatalf("durability degraded after reopen: %v", err)
	}
}

// TestCrashAtEveryRecordBoundary is the kill-anywhere property: for every
// record boundary in the scenario's WAL, a session reopened from exactly that
// prefix fingerprints byte-identically to the in-memory oracle at the instant
// the record was logged.
func TestCrashAtEveryRecordBoundary(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	fps := captureFingerprints(s)
	runCrashScenario(t, s, nil)
	s.Close()

	recs, err := wal.Records(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 8 {
		t.Fatalf("scenario produced only %d records", len(recs))
	}
	for k := range recs {
		sub := killDir(t, dir, recs, k)
		s2, err := Open(durableOpts(sub))
		if err != nil {
			t.Fatalf("kill at record %d (lsn %d): reopen: %v", k, recs[k].LSN, err)
		}
		got := s2.StateFingerprint()
		s2.Close()
		if want := expectedAt(t, fps, recs, k); got != want {
			t.Fatalf("kill at record %d (lsn %d): recovered state diverges from oracle", k, recs[k].LSN)
		}
	}
}

// TestCrashAtCheckpointBoundaries kills around a mid-scenario checkpoint: at
// the checkpoint exactly (no WAL suffix), at every record boundary after it
// (checkpoint + suffix replay), and with an interrupted later checkpoint
// publication (stale .tmp) that recovery must ignore.
func TestCrashAtCheckpointBoundaries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	fps := captureFingerprints(s)
	var fpAtCkpt string
	runCrashScenario(t, s, func() {
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		fpAtCkpt = s.StateFingerprint()
	})
	s.Close()

	ckLSN, _, ok, err := wal.LatestCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("no checkpoint after scenario: %v", err)
	}

	// Kill exactly at the checkpoint: recovery from the image alone.
	atCkpt := t.TempDir()
	copyFile(t, filepath.Join(dir, fmt.Sprintf("ckpt-%016x.ckpt", ckLSN)), filepath.Join(atCkpt, fmt.Sprintf("ckpt-%016x.ckpt", ckLSN)))
	s2, err := Open(durableOpts(atCkpt))
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.StateFingerprint(); got != fpAtCkpt {
		t.Fatal("checkpoint-only recovery diverges from the checkpointed state")
	}
	// The LSN sequence must not restart below the checkpoint. The full scan
	// repairs the still-dirty 10001 group — guaranteed fresh durable work at
	// this recovery point (phase1 only cleaned the Los Angeles scope).
	if _, err := s2.Query("SELECT zip, city FROM cities"); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if recs, err := wal.Records(atCkpt, ckLSN); err != nil || len(recs) == 0 {
		t.Fatalf("post-recovery journaling: recs=%d err=%v", len(recs), err)
	}

	// Kill at every record boundary past the checkpoint (the checkpoint's
	// prune already retired the covered files, so all remaining records
	// replay on top of the image).
	recs, err := wal.Records(dir, ckLSN)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 3 {
		t.Fatalf("only %d records after checkpoint", len(recs))
	}
	for k := range recs {
		sub := killDir(t, dir, recs, k)
		s3, err := Open(durableOpts(sub))
		if err != nil {
			t.Fatalf("kill at post-ckpt record %d: reopen: %v", k, err)
		}
		got := s3.StateFingerprint()
		s3.Close()
		if want := expectedAt(t, fps, recs, k); got != want {
			t.Fatalf("kill at post-ckpt record %d (lsn %d): recovered state diverges", k, recs[k].LSN)
		}
	}

	// A crash mid-checkpoint-publication leaves a stale .tmp; recovery must
	// use the valid checkpoint and the full suffix.
	tornDir := killDir(t, dir, recs, len(recs)-1)
	if err := os.WriteFile(filepath.Join(tornDir, fmt.Sprintf("ckpt-%016x.ckpt.tmp", recs[len(recs)-1].LSN)), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s4, err := Open(durableOpts(tornDir))
	if err != nil {
		t.Fatal(err)
	}
	got := s4.StateFingerprint()
	s4.Close()
	if want := expectedAt(t, fps, recs, len(recs)-1); got != want {
		t.Fatal("recovery with a torn checkpoint publication diverges")
	}
}

// TestCrashMidSweepResumes: a kill while a background full-clean sweep is in
// flight must, on reopen, resume the sweep from the recovered checked-set
// bookkeeping — cleaning only the remainder — and converge to the same bytes
// as the uninterrupted run.
func TestCrashMidSweepResumes(t *testing.T) {
	dir := t.TempDir()
	opts := sweepOpts()
	opts.Dir = dir
	opts.CheckpointBytes = -1
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Register(sweepTable(sweepGroups, sweepDirtyGroups))
	s.AddRule(sweepRule())
	queries := sweepQueries(sweepGroups, sweepRangeGroups)
	if i, strat := runUntilFlip(t, s, queries); i < 0 || strat != "background" {
		t.Fatalf("no background switch (i=%d strat=%q)", i, strat)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitCleaning(ctx); err != nil {
		t.Fatal(err)
	}
	var oracleSweepGroups int
	for _, st := range s.CleaningStatus() {
		oracleSweepGroups += st.GroupsCleaned
	}
	if oracleSweepGroups == 0 {
		t.Fatal("oracle sweep repaired nothing; scenario is mis-seeded")
	}
	want := s.StateFingerprint()
	s.Close()

	recs, err := wal.Records(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	sweepIdx := -1
	for i, r := range recs {
		if len(r.Payload) > 0 && r.Payload[0] == recSweep {
			sweepIdx = i
			break
		}
	}
	if sweepIdx < 0 || sweepIdx >= len(recs)-2 {
		t.Fatalf("no mid-sweep kill window (sweep record at %d of %d)", sweepIdx, len(recs))
	}

	// Two kill points: right at the sweep-enqueue record (nothing swept yet)
	// and just before the final chunk (almost everything swept).
	for _, k := range []int{sweepIdx, len(recs) - 2} {
		sub := killDir(t, dir, recs, k)
		s2, err := Open(Options{Dir: sub, Strategy: StrategyAuto, DisableStatsPruning: true,
			CleanChunkSize: 512, CheckpointBytes: -1})
		if err != nil {
			t.Fatalf("kill at record %d: reopen: %v", k, err)
		}
		if err := s2.WaitCleaning(ctx); err != nil {
			t.Fatal(err)
		}
		var resumedGroups int
		for _, st := range s2.CleaningStatus() {
			resumedGroups += st.GroupsCleaned
		}
		got := s2.StateFingerprint()
		s2.Close()
		if got != want {
			t.Fatalf("kill at record %d: resumed sweep diverges from uninterrupted run", k)
		}
		if k == len(recs)-2 && resumedGroups >= oracleSweepGroups {
			t.Fatalf("kill just before the final chunk: resumed sweep repaired %d groups (oracle sweep total %d) — it restarted instead of resuming",
				resumedGroups, oracleSweepGroups)
		}
	}
}

// TestApplyRecordBytesODelta: the WAL cost of a fix is a function of the
// delta, not the relation — a 1-group repair journals comparable bytes at 2k
// and 64k rows.
func TestApplyRecordBytesODelta(t *testing.T) {
	applyBytes := func(rows int) int {
		dir := t.TempDir()
		s, err := Open(durableOpts(dir))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Register(sweepTable(rows/4, 1)); err != nil {
			t.Fatal(err)
		}
		if err := s.AddRule(sweepRule()); err != nil {
			t.Fatal(err)
		}
		// Group 0 is the single dirty group; repair it.
		if _, err := s.Query("SELECT orderkey, suppkey FROM lineorder WHERE orderkey >= 0 AND orderkey < 1"); err != nil {
			t.Fatal(err)
		}
		s.Close()
		recs, err := wal.Records(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, r := range recs {
			if len(r.Payload) > 0 && r.Payload[0] == recApply {
				total += len(r.Payload)
			}
		}
		if total == 0 {
			t.Fatal("no apply record journaled")
		}
		return total
	}
	small := applyBytes(2048)
	big := applyBytes(65536)
	if big > 2*small {
		t.Fatalf("apply-record bytes grew with relation size: %d bytes at 2k rows, %d at 64k", small, big)
	}
}

// TestCloseRacesSweepSubmit (satellite: Close/finalizer ordering) hammers
// Close from several goroutines while background sweep chunks are submitting
// through the writer and queries are in flight. Must be race-free (run under
// -race), deadlock-free, and idempotent; every Close returns only after the
// teardown fully finished.
func TestCloseRacesSweepSubmit(t *testing.T) {
	for i := 0; i < 20; i++ {
		s := NewSession(Options{Strategy: StrategyIncremental, CleanChunkSize: 512})
		if err := s.Register(sweepTable(768, 150)); err != nil {
			t.Fatal(err)
		}
		if err := s.AddRule(sweepRule()); err != nil {
			t.Fatal(err)
		}
		if !s.CleanInBackground("lineorder", "phi") {
			t.Fatal("sweep did not start")
		}
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, _ = s.Query("SELECT orderkey, suppkey FROM lineorder WHERE orderkey < 40")
			}()
		}
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.Close()
			}()
		}
		wg.Wait()
		s.Close() // late close after full teardown is a no-op
		if _, err := s.Query("SELECT orderkey FROM lineorder"); err != ErrSessionClosed {
			t.Fatalf("query after close = %v, want ErrSessionClosed", err)
		}
	}
}

// TestWALAppendFailureDegradesAndReattaches pins the full degraded-mode
// lifecycle: with retries disabled, the first append failure detaches the
// log — a failed write does not consume its LSN, so journaling anything
// afterwards would replay a history with the failed record's state change
// missing. The session keeps serving from memory with DurabilityError set
// and the directory frozen at the pre-failure prefix; once the fault heals,
// a full checkpoint re-attaches the log and subsequent mutations journal
// again.
func TestWALAppendFailureDegradesAndReattaches(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS{})
	opts := durableOpts(dir)
	opts.FS = ffs
	opts.WALRetries = -1 // degrade on the first failure, no retry episode
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(citiesTable()); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRule(dc.FD("phi", "cities", "city", "zip")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("SELECT zip, city FROM cities WHERE city = 'Los Angeles'"); err != nil {
		t.Fatal(err)
	}
	prefix := s.StateFingerprint()

	// Disk full, forever (until healed), on log-file writes only.
	ffs.Arm(vfs.Fault{Count: -1, Err: vfs.ENOSPC("wal"), Match: func(op vfs.Op, name string) bool {
		return op == vfs.OpWrite && strings.Contains(name, "wal-")
	}})

	// Fresh repair work forces an apply record; its append fails and, with
	// retries disabled, degrades immediately.
	if _, err := s.Query("SELECT zip, city FROM cities WHERE zip = 10001"); err != nil {
		t.Fatal(err)
	}
	if st := s.DurabilityState(); st != DurabilityDegraded {
		t.Fatalf("DurabilityState = %v, want degraded", st)
	}
	if err := s.DurabilityError(); err == nil || !strings.Contains(err.Error(), "no space") {
		t.Fatalf("DurabilityError = %v, want ENOSPC", err)
	}
	s.w.mu.Lock()
	detached := s.w.wlog == nil
	s.w.mu.Unlock()
	if !detached {
		t.Fatal("log still attached after append failure")
	}
	// Memory-only operation continues: more repair work, no new error.
	if _, err := s.Query("SELECT zip, city FROM cities"); err != nil {
		t.Fatal(err)
	}
	degraded := s.StateFingerprint()
	if degraded == prefix {
		t.Fatal("post-failure queries made no in-memory progress")
	}

	// The fault heals; a full checkpoint supersedes the holed history and
	// re-attaches the log.
	ffs.Disarm()
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after heal: %v", err)
	}
	if st := s.DurabilityState(); st != DurabilityReattached {
		t.Fatalf("DurabilityState after checkpoint = %v, want reattached", st)
	}
	if err := s.DurabilityError(); err != nil {
		t.Fatalf("DurabilityError after re-attach = %v, want nil", err)
	}
	// Journaling resumed: a post-reattach mutation must survive reopen via
	// the fresh WAL (it is not in the checkpoint image).
	if err := s.Register(empTable()); err != nil {
		t.Fatal(err)
	}
	final := s.StateFingerprint()
	s.Close()

	r, err := Open(durableOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.StateFingerprint(); got != final {
		t.Fatalf("reopened fingerprint is not the healed state:\ngot:\n%s\nwant:\n%s", got, final)
	}
}
