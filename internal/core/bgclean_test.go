package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"daisy/internal/bgclean"
	"daisy/internal/dc"
	"daisy/internal/detect"
	"daisy/internal/repair"
	"daisy/internal/schema"
	"daisy/internal/table"
	"daisy/internal/trace"
	"daisy/internal/value"
)

// sweepTable hand-builds a relation shaped for deterministic §5.2.3 switch
// tests: `groups` orderkey groups of 4 rows each, every (groups/dirtyGroups)-th
// violating phi (orderkey → suppkey) with a suppkey that appears nowhere
// else. Dirty groups spread across the whole relation, so a background sweep
// has work in every chunk; no rhs value is shared across groups, so
// relaxation never crosses group boundaries and every query's (qi, ei, epsi)
// trajectory is an exact function of its range — identical whether snapshots
// are fresh or stale.
func sweepTable(groups, dirtyGroups int) *table.Table {
	sch := schema.MustNew(
		schema.Column{Name: "orderkey", Kind: value.Int},
		schema.Column{Name: "suppkey", Kind: value.Int},
	)
	tb := table.New("lineorder", sch)
	stride := groups / dirtyGroups
	for g := 0; g < groups; g++ {
		for r := 0; r < 4; r++ {
			supp := int64(1000 + g)
			if g%stride == 0 && r == 3 {
				supp = int64(1000 + groups + g) // unique wrong value: violation
			}
			tb.MustAppend(table.Row{value.NewInt(int64(g)), value.NewInt(supp)})
		}
	}
	return tb
}

func sweepRule() *dc.Constraint { return dc.FD("phi", "lineorder", "suppkey", "orderkey") }

// sweepQueries are disjoint, group-aligned orderkey ranges: rangeGroups
// groups per query. With stats pruning disabled every query records cost, so
// the §5.2.3 trajectory crosses deterministically mid-workload.
func sweepQueries(groups, rangeGroups int) []string {
	var qs []string
	for lo := 0; lo < groups; lo += rangeGroups {
		qs = append(qs, fmt.Sprintf(
			"SELECT orderkey, suppkey FROM lineorder WHERE orderkey >= %d AND orderkey < %d",
			lo, lo+rangeGroups))
	}
	return qs
}

func newSweepSession(t *testing.T, opts Options, groups, dirtyGroups int) *Session {
	t.Helper()
	s := NewSession(opts)
	if err := s.Register(sweepTable(groups, dirtyGroups)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddRule(sweepRule()); err != nil {
		t.Fatal(err)
	}
	return s
}

// sweepOpts triggers the switch after a few queries: 768 groups (3072 rows,
// six 512-row chunks), 150 dirty groups, 16-group ranges, pruning disabled
// so every query charges the model.
func sweepOpts() Options {
	return Options{Strategy: StrategyAuto, DisableStatsPruning: true, CleanChunkSize: 512}
}

const (
	sweepGroups      = 768
	sweepDirtyGroups = 150
	sweepRangeGroups = 16
)

// runUntilFlip executes queries in order until a decision other than
// "incremental"/"skip" appears, returning the query index and the strategy.
func runUntilFlip(t *testing.T, s *Session, queries []string) (int, string) {
	t.Helper()
	for i, q := range queries {
		res, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range res.Decisions {
			if d.Strategy != "incremental" && d.Strategy != "skip" {
				return i, d.Strategy
			}
		}
	}
	return -1, ""
}

// TestBackgroundFullCleanConvergesToSynchronous is the tentpole acceptance:
// after the §5.2.3 inequality flips, the triggering query returns with a
// "background" decision having cleaned only its own scope, the sweep
// publishes at least one epoch per chunk, and the quiesced state is
// byte-identical to a synchronous inline full clean from the same pre-switch
// state — and to a pure-incremental covering run, since per-group fixes are
// the same bytes on every path.
func TestBackgroundFullCleanConvergesToSynchronous(t *testing.T) {
	queries := sweepQueries(sweepGroups, sweepRangeGroups)

	// Synchronous reference: identical session/workload, inline switch.
	syncOpts := sweepOpts()
	syncOpts.DisableBackgroundClean = true
	syncS := newSweepSession(t, syncOpts, sweepGroups, sweepDirtyGroups)
	defer syncS.Close()
	syncFlip, syncStrategy := runUntilFlip(t, syncS, queries)
	if syncFlip < 1 || syncStrategy != "full" {
		t.Fatalf("sync run: flip at %d with %q, want mid-workload inline full", syncFlip, syncStrategy)
	}
	want := syncS.Table("lineorder").Fingerprint()

	// Async run: same pre-switch trajectory, then a background sweep.
	s := newSweepSession(t, sweepOpts(), sweepGroups, sweepDirtyGroups)
	defer s.Close()
	dirtyBefore := s.Table("lineorder").DirtyTuples()
	flip, strategy := runUntilFlip(t, s, queries)
	if flip != syncFlip {
		t.Fatalf("async flip at query %d, sync at %d — pre-switch trajectories must match", flip, syncFlip)
	}
	if strategy != "background" {
		t.Fatalf("async flip strategy = %q, want background", strategy)
	}
	// The triggering query cleaned only its own scope: most dirty groups are
	// still dirty right after it returns... unless the sweep already caught
	// up, which CleaningStatus distinguishes. Assert via the job instead:
	epochAtFlip := s.Epoch()
	if err := s.WaitCleaning(context.Background()); err != nil {
		t.Fatal(err)
	}
	status := s.CleaningStatus()
	if len(status) != 1 {
		t.Fatalf("CleaningStatus = %d jobs, want 1 (dedup)", len(status))
	}
	job := status[0]
	if job.State != bgclean.Done {
		t.Fatalf("job state = %v (%s), want done", job.State, job.Err)
	}
	if job.RowsTotal != 4*sweepGroups || job.RowsDone != job.RowsTotal {
		t.Errorf("rows = %d/%d, want %d/%d", job.RowsDone, job.RowsTotal, 4*sweepGroups, 4*sweepGroups)
	}
	if job.ChunksDone < 1 {
		t.Errorf("chunksDone = %d, want >= 1", job.ChunksDone)
	}
	if job.GroupsCleaned == 0 {
		t.Error("sweep repaired no groups — the trigger should have left most dirty")
	}
	// One epoch per chunk, at least (the final epoch count may include the
	// racing epochs of queries issued before the flip returned). The chunk
	// count itself is adaptive, so the bound comes from the job's own tally.
	if got := s.Epoch() - epochAtFlip; got < uint64(job.ChunksDone) {
		t.Errorf("epochs advanced %d during sweep, want >= %d (one per chunk)", got, job.ChunksDone)
	}
	if got := s.Table("lineorder").Fingerprint(); got != want {
		t.Errorf("quiesced background state differs from synchronous full clean\nasync:\n%.1200s\nsync:\n%.1200s", got, want)
	}
	if dirty := s.Table("lineorder").DirtyTuples(); dirty <= dirtyBefore/2 {
		t.Logf("dirty tuples after sweep: %d (probabilistic cells)", dirty)
	}

	// Pure-incremental covering reference: same bytes again.
	incS := newSweepSession(t, Options{Strategy: StrategyIncremental, DisableStatsPruning: true}, sweepGroups, sweepDirtyGroups)
	defer incS.Close()
	if _, err := incS.Query("SELECT orderkey, suppkey FROM lineorder WHERE orderkey >= 0"); err != nil {
		t.Fatal(err)
	}
	if inc := incS.Table("lineorder").Fingerprint(); inc != want {
		t.Error("incremental covering run diverged from full-clean bytes (consult unification broken)")
	}

	// Post-quiesce queries skip: the model recorded the switch and every
	// group is checked.
	res, err := s.Query(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Decisions {
		if d.Strategy != "skip" {
			t.Errorf("post-quiesce decision = %q, want skip", d.Strategy)
		}
	}
}

// TestBackgroundSweepConvergesUnderConcurrentQueries triggers the flip with
// a deterministic serial prefix (the racing-flip *decision* is pinned by the
// serial tests; under racing traffic the crossing-to-capped window of the
// cost trajectory is timing-dependent by nature), pauses the sweep at a
// chunk boundary, and then lets 8 goroutines race the resumed sweep over the
// full workload: queries ride the advancing chunk epochs, duplicate fixes
// coalesce in the writer, and the converged state is byte-identical to the
// synchronous reference. Run under -race in CI.
func TestBackgroundSweepConvergesUnderConcurrentQueries(t *testing.T) {
	queries := sweepQueries(sweepGroups, sweepRangeGroups)

	syncOpts := sweepOpts()
	syncOpts.DisableBackgroundClean = true
	syncS := newSweepSession(t, syncOpts, sweepGroups, sweepDirtyGroups)
	defer syncS.Close()
	for _, q := range queries {
		if _, err := syncS.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	want := syncS.Table("lineorder").Fingerprint()

	for trial := 0; trial < 2; trial++ {
		s := newSweepSession(t, sweepOpts(), sweepGroups, sweepDirtyGroups)
		flip, strategy := runUntilFlip(t, s, queries)
		if flip < 0 || strategy != "background" {
			t.Fatalf("serial prefix did not flip (flip=%d strategy=%q)", flip, strategy)
		}
		// Hold the sweep (best effort — it may already have finished a fast
		// chunk or two) so the racers demonstrably overlap the chunk epochs.
		paused := s.PauseCleaning("lineorder", "phi")

		const goroutines = 8
		var wg sync.WaitGroup
		errCh := make(chan error, goroutines)
		resume := make(chan struct{})
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := range queries {
					if paused && i == 2 && g == 0 {
						close(resume) // release the sweep mid-traffic
					}
					q := queries[(i+g*3+trial)%len(queries)]
					if _, err := s.Query(q); err != nil {
						errCh <- err
						return
					}
				}
			}(g)
		}
		if paused {
			<-resume
			s.ResumeCleaning("lineorder", "phi")
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
		if err := s.WaitCleaning(context.Background()); err != nil {
			t.Fatal(err)
		}
		status := s.CleaningStatus()
		if len(status) == 0 {
			t.Fatal("no background job scheduled")
		}
		for _, st := range status {
			if st.State != bgclean.Done {
				t.Fatalf("job %d state = %v (%s), want done", st.ID, st.State, st.Err)
			}
		}
		if got := s.Table("lineorder").Fingerprint(); got != want {
			t.Fatalf("trial %d: concurrent quiesced state differs from synchronous reference", trial)
		}
		s.Close()
	}
}

// TestMidSweepCancellationLeavesResumableState drives the sweep job body
// directly (cancellation is cooperative at chunk boundaries, so stopping
// after k chunks IS the canceled state): the partial state is valid — every
// completed chunk's groups repaired exactly, everything else untouched — and
// both a resumed sweep and an ordinary incremental covering query finish it
// to the reference bytes.
func TestMidSweepCancellationLeavesResumableState(t *testing.T) {
	ref := newSweepSession(t, Options{Strategy: StrategyIncremental, DisableStatsPruning: true}, sweepGroups, sweepDirtyGroups)
	defer ref.Close()
	if _, err := ref.Query("SELECT orderkey, suppkey FROM lineorder WHERE orderkey >= 0"); err != nil {
		t.Fatal(err)
	}
	want := ref.Table("lineorder").Fingerprint()

	build := func() (*Session, *fdSweepJob) {
		s := newSweepSession(t, sweepOpts(), sweepGroups, sweepDirtyGroups)
		st := s.w.current().tables["lineorder"]
		fd, _ := sweepRule().AsFD()
		return s, newFDSweepJob(s, "lineorder", st.ident, sweepRule(), fd, st.pt.Len())
	}

	// Resume path 1: run the first half in 512-row chunks, "cancel", resume
	// the rest under a different (unaligned) chunking — group anchoring makes
	// chunk scopes partition identically for any range choice.
	const step = 512
	s1, job1 := build()
	defer s1.Close()
	total := job1.Total()
	if total < 3*step {
		t.Fatalf("rows = %d, want >= %d for a mid-sweep cut", total, 3*step)
	}
	cut := (total / step / 2) * step
	for lo := 0; lo < cut; lo += step {
		if _, err := job1.RunChunk(context.Background(), lo, lo+step); err != nil {
			t.Fatal(err)
		}
	}
	partial := s1.Table("lineorder").Fingerprint()
	if partial == want {
		t.Fatal("mid-sweep state already converged; cut point too late to test resume")
	}
	// Valid state: the canceled sweep must not have half-applied a chunk —
	// a fresh job resumes purely from the checked-set bookkeeping.
	st := s1.w.current().tables["lineorder"]
	fd, _ := sweepRule().AsFD()
	job1b := newFDSweepJob(s1, "lineorder", st.ident, sweepRule(), fd, st.pt.Len())
	for lo := 0; lo < job1b.Total(); lo += 700 {
		hi := lo + 700
		if hi > job1b.Total() {
			hi = job1b.Total()
		}
		if _, err := job1b.RunChunk(context.Background(), lo, hi); err != nil {
			t.Fatal(err)
		}
	}
	if got := s1.Table("lineorder").Fingerprint(); got != want {
		t.Error("resumed sweep diverged from reference")
	}

	// Resume path 2: an ordinary incremental covering query finishes the
	// canceled sweep's work through the epoch bookkeeping alone.
	s2, job2 := build()
	defer s2.Close()
	for lo := 0; lo < cut; lo += step {
		if _, err := job2.RunChunk(context.Background(), lo, lo+step); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := s2.QueryContext(context.Background(),
		"SELECT orderkey, suppkey FROM lineorder WHERE orderkey >= 0",
		WithStrategy(StrategyIncremental))
	if err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if got := s2.Table("lineorder").Fingerprint(); got != want {
		t.Error("incremental completion after mid-sweep cancellation diverged from reference")
	}
}

// TestCancelAndCloseStopSweep: CancelCleaning stops a paused sweep at its
// boundary with a terminal status, and Session.Close cancels live jobs
// without hanging.
func TestCancelAndCloseStopSweep(t *testing.T) {
	queries := sweepQueries(sweepGroups, sweepRangeGroups)
	s := newSweepSession(t, sweepOpts(), sweepGroups, sweepDirtyGroups)
	defer s.Close()
	if flip, strategy := runUntilFlip(t, s, queries); flip < 0 || strategy != "background" {
		t.Fatalf("no background flip (flip=%d strategy=%q)", flip, strategy)
	}
	// Pause → cancel → the job must reach a terminal state; Done is
	// acceptable when the sweep outran the pause request.
	s.PauseCleaning("lineorder", "phi")
	s.CancelCleaning("lineorder", "phi")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.WaitCleaning(ctx); err != nil {
		t.Fatal(err)
	}
	for _, st := range s.CleaningStatus() {
		if !st.State.Terminal() {
			t.Errorf("job %d not terminal after cancel: %v", st.ID, st.State)
		}
	}
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung with background scheduler")
	}
}

// TestCostModelReadsCoalescedCounters pins the concurrency fix to the
// §5.2.3 decision: a query computes its scope against its own (possibly
// stale) epoch, but the inequality reads the writer's latest coalesced cost
// model. Queries pinned to the pre-workload snapshot — the racing-caller
// shape, every one seeing epoch 0 — must therefore flip at exactly the same
// query index as the serial run. (Reading the stale epoch's model instead
// would observe a virgin trajectory each time and never switch.)
func TestCostModelReadsCoalescedCounters(t *testing.T) {
	queries := sweepQueries(sweepGroups, sweepRangeGroups)

	serial := newSweepSession(t, sweepOpts(), sweepGroups, sweepDirtyGroups)
	defer serial.Close()
	serialFlip, serialStrategy := runUntilFlip(t, serial, queries)
	if serialFlip < 1 || serialStrategy != "background" {
		t.Fatalf("serial run: flip at %d (%q), want background flip after query 0", serialFlip, serialStrategy)
	}

	stale := newSweepSession(t, sweepOpts(), sweepGroups, sweepDirtyGroups)
	defer stale.Close()
	snap := stale.w.current() // every query reuses the pre-workload epoch
	st := snap.tables["lineorder"]
	fd, _ := sweepRule().AsFD()
	staleFlip := -1
	for i := 0; i <= serialFlip && staleFlip < 0; i++ {
		qc := &queryCtx{s: stale, snap: snap, opts: stale.opts}
		// The same disjoint group range the serial query cleaned.
		var rows []int
		for r := i * sweepRangeGroups * 4; r < (i+1)*sweepRangeGroups*4; r++ {
			rows = append(rows, r)
		}
		var m detect.Metrics
		if _, err := qc.cleanFD(st, "lineorder", sweepRule(), fd, rows, nil, &m, trace.Span{}); err != nil {
			t.Fatal(err)
		}
		for _, d := range qc.decisions {
			if d.Strategy == "background" || d.Strategy == "full" {
				staleFlip = i
			}
		}
		qc.flush()
	}
	if staleFlip != serialFlip {
		t.Fatalf("stale-snapshot flip at %d, serial at %d — the decision must read the coalesced trajectory", staleFlip, serialFlip)
	}
	if err := stale.WaitCleaning(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestMarkSwitchedSurvivesDuplicateCoalescing: a sweep's final chunk may
// coalesce as a full duplicate when racing queries cleaned its groups first
// — the writer must still record the switch in the cost model, or every
// subsequent query would re-enqueue a redundant sweep forever.
func TestMarkSwitchedSurvivesDuplicateCoalescing(t *testing.T) {
	s := newSweepSession(t, Options{Strategy: StrategyIncremental, DisableStatsPruning: true}, 64, 16)
	defer s.Close()
	snap0 := s.w.current()
	st0 := snap0.tables["lineorder"]
	// Racing queries clean everything: every violating group becomes checked.
	if _, err := s.Query("SELECT orderkey, suppkey FROM lineorder WHERE orderkey >= 0"); err != nil {
		t.Fatal(err)
	}
	// Replay the sweep's final chunk as computed against the stale pre-clean
	// epoch: every group and cell is dropped as a duplicate at apply time.
	fd, _ := sweepRule().AsFD()
	idx := st0.fdIdx["phi"]
	scope, keys := idx.violatingScopeIn(0, st0.pt.Len(), func(value.MapKey) bool { return false })
	if len(keys) == 0 {
		t.Fatal("no violating groups in the pre-clean epoch")
	}
	var m detect.Metrics
	view := detect.PTableView{P: st0.pt}
	d := repair.FD(view, scope, idx.relax(scope, false, &m), fd, st0.pt.Schema.MustIndex, &m)
	s.w.submit(&applyReq{table: "lineorder", rule: "phi", isFD: true, ident: st0.ident,
		delta: d, base: st0.pt, groups: keys, markSwitched: true})
	cur := s.w.current().tables["lineorder"]
	if cur.cost == nil || !cur.cost.Switched() {
		t.Fatal("markSwitched dropped when the final chunk coalesced as a duplicate")
	}
}
