package core

import (
	"context"
	"fmt"

	"daisy/internal/bgclean"
	"daisy/internal/dc"
	"daisy/internal/detect"
	"daisy/internal/repair"
	"daisy/internal/value"
)

// fdSweepJob is the body of one background full-clean job: the §5.2.3
// strategy switch executed asynchronously. The scheduler drives the sweep as
// adaptively sized, segment-aligned row ranges; each chunk repairs the
// violating, still-unchecked FD groups anchored in it (a group belongs to
// the chunk holding its first member) and routes the delta through the
// session's single-writer apply loop, publishing one copy-on-write epoch per
// chunk. Concurrent queries ride the advancing epochs: groups a published
// chunk marked checked are skipped by their scope pass, and a group a racing
// query fixes first is dropped idempotently by the writer exactly as racing
// queries coalesce among themselves.
//
// Convergence: per-group fixes are pure functions of original values —
// P(rhs|lhs) over the group's full membership, P(lhs|rhs) over the
// relation-wide rhs-partner set (the relax support pass) — so the quiesced
// state is byte-identical to a synchronous full clean from the same
// pre-switch state, for any chunking, cancellation point, or query
// interleaving.
type fdSweepJob struct {
	s     *Session
	table string
	ident uint64 // registration identity; a replaced table obsoletes the job
	rule  *dc.Constraint
	fd    dc.FDSpec

	rows int
}

// newFDSweepJob sizes a sweep over the relation's current length (registered
// relations never grow during serving, so the row total is fixed).
func newFDSweepJob(s *Session, table string, ident uint64, rule *dc.Constraint, fd dc.FDSpec, rows int) *fdSweepJob {
	return &fdSweepJob{s: s, table: table, ident: ident, rule: rule, fd: fd, rows: rows}
}

// Total implements bgclean.Job.
func (j *fdSweepJob) Total() int { return j.rows }

// RunChunk implements bgclean.Job: clean the groups anchored in rows
// [lo, hi) against the latest published epoch and publish the result as one
// new epoch. Each chunk is atomic — its delta and checked-group marks land
// in a single writer request — which is what makes mid-sweep cancellation
// leave a valid, resumable state. Any chunking yields the same converged
// bytes: groups anchor at their first member, so chunk scopes partition the
// violating groups however the scheduler sizes the ranges.
func (j *fdSweepJob) RunChunk(ctx context.Context, lo, hi int) (bgclean.ChunkResult, error) {
	var res bgclean.ChunkResult
	if err := ctx.Err(); err != nil {
		return res, err
	}
	st, ok := j.s.w.current().tables[j.table]
	if !ok || st.ident != j.ident {
		return res, fmt.Errorf("%w: table %q replaced mid-sweep", bgclean.ErrObsolete, j.table)
	}
	idx := st.fdIdx[j.rule.Name]
	if idx == nil {
		// Replaced-and-re-triggered registrations build lazily; publish the
		// index once for every future epoch.
		if idx = j.s.w.ensureFDIndex(j.table, j.ident, j.rule.Name, j.fd); idx == nil {
			return res, fmt.Errorf("%w: table %q replaced mid-sweep", bgclean.ErrObsolete, j.table)
		}
		if st, ok = j.s.w.current().tables[j.table]; !ok || st.ident != j.ident {
			return res, fmt.Errorf("%w: table %q replaced mid-sweep", bgclean.ErrObsolete, j.table)
		}
	}

	checked := st.checkedGroups[j.rule.Name]
	scope, keys := idx.violatingScopeIn(lo, hi, func(k value.MapKey) bool { return checked[k] })

	req := &applyReq{table: j.table, rule: j.rule.Name, isFD: true, ident: j.ident}
	var m detect.Metrics
	if len(scope) > 0 {
		// Same fix semantics as every other FD path: the support pass makes
		// P(lhs|rhs) relation-wide, so the chunk's bytes match a monolithic
		// clean of the same groups.
		support := idx.relax(scope, false, &m)
		base := st.pt
		view := detect.NewPTableView(base)
		delta := repair.FD(view, scope, support, j.fd, view.P.Schema.MustIndex, &m)
		applied, updated := base.ApplyCOW(delta)
		m.Updates += int64(updated)
		req.delta, req.base, req.applied, req.groups = delta, base, applied, keys
		res.Groups, res.Cells = len(keys), updated
	}
	if hi >= j.rows && st.cost != nil {
		// The sweep quiesces with this chunk: record the switch so the cost
		// model charges subsequent queries only query cost (§5.2.3).
		req.markSwitched = true
	}
	// Publish — one epoch per chunk (racing query write-backs may coalesce
	// into the same batch; the epoch still advances per batch).
	j.s.w.submit(req)
	j.s.metricsMu.Lock()
	j.s.Metrics.Add(m)
	j.s.metricsMu.Unlock()
	return res, nil
}

// enqueueSweep schedules (dedup per table/rule/registration) a background
// full clean. Called from queryCtx.flush after the triggering query's own
// write-backs published, so the sweep starts from a state where the query's
// scope is already checked. A query whose decision raced a completing sweep
// — it read the model pre-markSwitched, flushed post-completion — finds the
// switch already recorded and schedules nothing.
func (s *Session) enqueueSweep(table string, ident uint64, rule *dc.Constraint, fd dc.FDSpec) {
	st, ok := s.w.current().tables[table]
	if !ok || st.ident != ident {
		return
	}
	if st.cost != nil && st.cost.Switched() {
		return // the sweep (or an inline full clean) already finished
	}
	job := newFDSweepJob(s, table, ident, rule, fd, st.pt.Len())
	if _, fresh := s.bg.Enqueue(table, rule.Name, ident, job); fresh {
		// Journal the enqueue so a crash mid-sweep resumes the clean on Open
		// (from the recovered checked-set bookkeeping, not from scratch).
		s.w.logSweep(table, rule.Name)
	}
}

// CleanInBackground schedules a background full-clean sweep of one FD rule
// over one registered relation without waiting for the §5.2.3 cost
// inequality to flip — the experimental hook direct sweep measurements (e.g.
// the segment-skip benchmark) use. It reports whether a sweep is now live
// for (table, rule); a live job for the same registration dedups, so calling
// it under an already-running sweep joins that sweep. Only FD rules sweep in
// the background: an unknown table, unknown rule, or general DC returns
// false. Track the sweep through CleaningStatus / WaitCleaning.
func (s *Session) CleanInBackground(table, rule string) bool {
	snap := s.w.current()
	st, ok := snap.tables[table]
	if !ok {
		return false
	}
	for _, r := range snap.rules {
		if r.Name != rule || (r.Table != "" && r.Table != table) {
			continue
		}
		fd, isFD := r.AsFD()
		if !isFD {
			return false
		}
		job := newFDSweepJob(s, table, st.ident, r, fd, st.pt.Len())
		id, fresh := s.bg.Enqueue(table, rule, st.ident, job)
		if fresh {
			s.w.logSweep(table, rule)
		}
		return id != 0
	}
	return false
}

var _ bgclean.Job = (*fdSweepJob)(nil)
