// Command daisy-clean runs the offline (full-dataset) cleaning baseline over
// a CSV file, printing the probabilistic repair summary and optionally
// writing the most-probable repaired version.
//
// Usage:
//
//	daisy-clean -in dirty.csv -rule 'phi: !(t1.zip=t2.zip & t1.city!=t2.city)' [-rule ...] [-out fixed.csv]
//	daisy-clean -in dirty.csv -rule '...' -dir ./cleandir [-out fixed.csv]
//
// With -dir the clean runs through a durable WAL-backed session instead of
// the one-shot offline pass: registration, rules, and every repair batch are
// journaled into the directory, the full clean runs as a resumable
// background sweep, and a rerun with the same -dir reopens the journal and
// picks up where the previous process — even one killed mid-sweep — left
// off.
//
// Ctrl-C cancels the in-flight cleaning pass cooperatively; the command
// prints the partial metrics accumulated so far and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"daisy/internal/core"
	"daisy/internal/dc"
	"daisy/internal/offline"
	"daisy/internal/ptable"
	"daisy/internal/table"
)

type ruleList []string

func (r *ruleList) String() string     { return strings.Join(*r, "; ") }
func (r *ruleList) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	in := flag.String("in", "", "dirty CSV file (header row required)")
	out := flag.String("out", "", "optional output CSV with the most probable repair")
	dir := flag.String("dir", "", "durable session directory: journal the clean (WAL + checkpoints) and resume interrupted runs")
	var rules ruleList
	flag.Var(&rules, "rule", "denial constraint, e.g. 'phi: !(t1.zip=t2.zip & t1.city!=t2.city)' (repeatable)")
	flag.Parse()

	if *in == "" || len(rules) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	name := strings.TrimSuffix(filepath.Base(*in), filepath.Ext(*in))
	t, err := table.ReadCSVFile(name, *in, nil)
	if err != nil {
		fatal(err)
	}
	var parsed []*dc.Constraint
	for _, rtext := range rules {
		c, err := dc.Parse(rtext)
		if err != nil {
			fatal(err)
		}
		parsed = append(parsed, c)
	}
	// Ctrl-C cancels the cleaning pass cooperatively.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *dir != "" {
		if err := cleanDurable(ctx, *dir, t, parsed, *out); err != nil {
			fatal(err)
		}
		return
	}

	pt := ptable.FromTable(t)
	start := time.Now()
	rep, err := (&offline.Cleaner{}).CleanAllContext(ctx, pt, parsed)
	if errors.Is(err, context.Canceled) {
		fmt.Printf("interrupted after %s; partial work: scanned=%d comparisons=%d repairs=%d\n",
			time.Since(start).Round(time.Millisecond),
			rep.Metrics.Scanned, rep.Metrics.Comparisons, rep.Metrics.Repairs)
		return
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cleaned %s: %d rows, %d violating groups, %d violating pairs, %d cells updated in %s\n",
		*in, t.Len(), rep.ViolatingGroups, rep.ViolatingPairs, rep.UpdatedCells,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("work: scanned=%d comparisons=%d repairs=%d\n",
		rep.Metrics.Scanned, rep.Metrics.Comparisons, rep.Metrics.Repairs)
	if *out != "" {
		if err := pt.MostProbable().WriteCSVFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("most probable repair written to %s\n", *out)
	}
}

// cleanDurable runs the full clean through a WAL-backed session rooted at
// dir. A fresh directory journals the registration image and rules first; a
// reopened one recovers the previous run's state (including a sweep killed
// mid-flight, which resumes from its checked-set bookkeeping) and skips
// re-registration. Each rule's clean runs as a background sweep; the command
// waits for quiescence, so on clean exit the directory holds the fully
// cleaned, reopenable state.
func cleanDurable(ctx context.Context, dir string, t *table.Table, rules []*dc.Constraint, out string) error {
	s, err := core.Open(core.Options{Dir: dir, Strategy: core.StrategyIncremental})
	if err != nil {
		return err
	}
	defer s.Close()
	if s.Table(t.Name) == nil {
		if err := s.Register(t); err != nil {
			return err
		}
	} else {
		fmt.Printf("daisy-clean: resuming durable session in %s (%s already registered)\n", dir, t.Name)
	}
	have := make(map[string]bool)
	for _, c := range s.Rules() {
		have[c.Name] = true
	}
	for _, c := range rules {
		if have[c.Name] {
			continue
		}
		if err := s.AddRule(c); err != nil {
			return err
		}
	}
	start := time.Now()
	for _, c := range rules {
		s.CleanInBackground(t.Name, c.Name)
	}
	if err := s.WaitCleaning(ctx); err != nil {
		if errors.Is(err, context.Canceled) {
			for _, job := range s.CleaningStatus() {
				fmt.Printf("interrupted: sweep %s/%s %v %d/%d rows, %d groups repaired — rerun with the same -dir to resume\n",
					job.Table, job.Rule, job.State, job.RowsDone, job.RowsTotal, job.GroupsCleaned)
			}
			return nil
		}
		return err
	}
	var groups int64
	for _, job := range s.CleaningStatus() {
		groups += int64(job.GroupsCleaned)
	}
	fmt.Printf("cleaned %s durably in %s: %d rows, %d rules, %d groups repaired by sweeps, epoch %d, journal in %s\n",
		t.Name, time.Since(start).Round(time.Millisecond), t.Len(), len(rules), groups, s.Epoch(), dir)
	if out != "" {
		if err := s.Table(t.Name).MostProbable().WriteCSVFile(out); err != nil {
			return err
		}
		fmt.Printf("most probable repair written to %s\n", out)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daisy-clean:", err)
	os.Exit(1)
}
