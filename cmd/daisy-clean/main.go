// Command daisy-clean runs the offline (full-dataset) cleaning baseline over
// a CSV file, printing the probabilistic repair summary and optionally
// writing the most-probable repaired version.
//
// Usage:
//
//	daisy-clean -in dirty.csv -rule 'phi: !(t1.zip=t2.zip & t1.city!=t2.city)' [-rule ...] [-out fixed.csv]
//
// Ctrl-C cancels the in-flight cleaning pass cooperatively; the command
// prints the partial metrics accumulated so far and exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"daisy/internal/dc"
	"daisy/internal/offline"
	"daisy/internal/ptable"
	"daisy/internal/table"
)

type ruleList []string

func (r *ruleList) String() string     { return strings.Join(*r, "; ") }
func (r *ruleList) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	in := flag.String("in", "", "dirty CSV file (header row required)")
	out := flag.String("out", "", "optional output CSV with the most probable repair")
	var rules ruleList
	flag.Var(&rules, "rule", "denial constraint, e.g. 'phi: !(t1.zip=t2.zip & t1.city!=t2.city)' (repeatable)")
	flag.Parse()

	if *in == "" || len(rules) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	name := strings.TrimSuffix(filepath.Base(*in), filepath.Ext(*in))
	t, err := table.ReadCSVFile(name, *in, nil)
	if err != nil {
		fatal(err)
	}
	var parsed []*dc.Constraint
	for _, rtext := range rules {
		c, err := dc.Parse(rtext)
		if err != nil {
			fatal(err)
		}
		parsed = append(parsed, c)
	}
	// Ctrl-C cancels the cleaning pass cooperatively.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	pt := ptable.FromTable(t)
	start := time.Now()
	rep, err := (&offline.Cleaner{}).CleanAllContext(ctx, pt, parsed)
	if errors.Is(err, context.Canceled) {
		fmt.Printf("interrupted after %s; partial work: scanned=%d comparisons=%d repairs=%d\n",
			time.Since(start).Round(time.Millisecond),
			rep.Metrics.Scanned, rep.Metrics.Comparisons, rep.Metrics.Repairs)
		return
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cleaned %s: %d rows, %d violating groups, %d violating pairs, %d cells updated in %s\n",
		*in, t.Len(), rep.ViolatingGroups, rep.ViolatingPairs, rep.UpdatedCells,
		time.Since(start).Round(time.Millisecond))
	fmt.Printf("work: scanned=%d comparisons=%d repairs=%d\n",
		rep.Metrics.Scanned, rep.Metrics.Comparisons, rep.Metrics.Repairs)
	if *out != "" {
		if err := pt.MostProbable().WriteCSVFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("most probable repair written to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daisy-clean:", err)
	os.Exit(1)
}
