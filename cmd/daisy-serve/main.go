// Command daisy-serve runs the Daisy HTTP front-end: per-tenant cleaning
// sessions behind bounded admission control, with Prometheus metrics and
// graceful drain.
//
//	daisy-serve -addr :8080 -root /var/lib/daisy
//
// Tenants are selected by the X-Daisy-Tenant header (default "default");
// with -root each tenant is a durable session directory under the root,
// recovered on first use and checkpointed on idle eviction and shutdown.
// SIGTERM/SIGINT starts the drain: new work is rejected with 503 +
// Retry-After, in-flight query streams run to their trailers, background
// cleaning completes, durable state checkpoints, and the process exits 0.
//
// Durable tenants survive disk faults in degraded mode (serving from memory
// while the WAL is detached); -fail-closed instead rejects mutating requests
// with 503 + Retry-After until the background re-attach cycle restores
// logging. /healthz reports per-tenant durability state either way.
//
// Observability: -slow-query logs queries over the threshold (with span
// trees, served on /v1/debug/slow), -trace-sample traces a fraction of all
// queries, and -debug-addr exposes net/http/pprof on a separate listener.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"daisy/internal/core"
	"daisy/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		root         = flag.String("root", "", "durable tenant root directory (empty: in-memory tenants)")
		sync         = flag.String("sync", "os", "WAL sync mode of durable tenants: os|always")
		maxInflight  = flag.Int("max-inflight", 32, "max queries executing or streaming at once")
		maxQueue     = flag.Int("max-queue", 64, "max queries waiting for an execution slot")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "max wait for an execution slot")
		idleTimeout  = flag.Duration("idle-timeout", 10*time.Minute, "evict a durable tenant session after this long idle (<0 disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time for graceful drain on SIGTERM")
		workers      = flag.Int("workers", 0, "per-query worker parallelism (0: all CPUs)")
		failClosed   = flag.Bool("fail-closed", false, "reject mutating requests with 503 while a tenant's durability is degraded (default: keep serving from memory)")
		debugAddr    = flag.String("debug-addr", "", "listen address for the pprof debug server (empty: disabled)")
		slowQuery    = flag.Duration("slow-query", 0, "log queries slower than this and serve them on /v1/debug/slow (0: disabled)")
		traceSample  = flag.Float64("trace-sample", 0, "probability [0,1] of tracing a query not explicitly asking via ?trace=1")
	)
	flag.Parse()

	opts := core.Options{Workers: *workers, TraceSampleRate: *traceSample}
	if *failClosed {
		opts.Policy = core.FailClosed
	}
	switch *sync {
	case "os":
		opts.Sync = core.SyncOS
	case "always":
		opts.Sync = core.SyncAlways
	default:
		log.Fatalf("daisy-serve: -sync must be os or always, got %q", *sync)
	}

	srv := server.New(server.Config{
		Root:               *root,
		Session:            opts,
		MaxInflight:        *maxInflight,
		MaxQueue:           *maxQueue,
		QueueTimeout:       *queueTimeout,
		IdleTimeout:        *idleTimeout,
		SlowQueryThreshold: *slowQuery,
		Logf:               log.Printf,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *debugAddr != "" {
		// pprof on its own listener and mux: profiling stays off the serving
		// address, so exposing it is an explicit operator decision.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("daisy-serve: pprof debug server on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				log.Printf("daisy-serve: debug server: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("daisy-serve: listening on %s (root=%q inflight=%d queue=%d)",
			*addr, *root, *maxInflight, *maxQueue)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		log.Fatalf("daisy-serve: %v", err)
	case sig := <-sigCh:
		log.Printf("daisy-serve: %v: draining (timeout %v)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain first — in-flight NDJSON streams finish their trailers and every
	// tenant quiesces (cleaning done, checkpoint, close) — then shut the
	// listener down; its remaining keep-alive connections are idle by now.
	if err := srv.Drain(ctx); err != nil {
		log.Printf("daisy-serve: drain: %v", err)
		_ = httpSrv.Close()
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("daisy-serve: shutdown: %v", err)
		os.Exit(1)
	}
	fmt.Println("daisy-serve: drained cleanly")
}
