// Command daisy-query runs analysis queries over dirty CSV data with
// cleaning weaved into every query — the Daisy experience. Queries come from
// the command line or stdin (one per line).
//
// Usage:
//
//	daisy-query -in cities.csv \
//	    -rule 'phi: !(t1.zip=t2.zip & t1.city!=t2.city)' \
//	    "SELECT zip, city FROM cities WHERE city = 'Los Angeles'"
//
//	cat workload.sql | daisy-query -in cities.csv -rule '...'
//
// Ctrl-C cancels the in-flight query through its context: the query aborts
// mid-clean without publishing partial repairs, and the command exits
// cleanly after printing the metrics of the queries that completed. Parse
// errors are reported with a caret at the offending byte offset.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"daisy"
)

type ruleList []string

func (r *ruleList) String() string     { return strings.Join(*r, "; ") }
func (r *ruleList) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	in := flag.String("in", "", "dirty CSV file (header row required)")
	strategy := flag.String("strategy", "auto", "cleaning strategy: auto, incremental, full")
	timeout := flag.Duration("timeout", 0, "per-query deadline (0 = none)")
	traceFlag := flag.Bool("trace", false, "print each query's span tree (EXPLAIN ANALYZE-style) after its rows")
	var rules ruleList
	flag.Var(&rules, "rule", "denial constraint (repeatable)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	name := strings.TrimSuffix(filepath.Base(*in), filepath.Ext(*in))
	t, err := daisy.ReadCSVFile(name, *in)
	if err != nil {
		fatal(err)
	}
	opts := daisy.Options{}
	switch *strategy {
	case "auto":
		opts.Strategy = daisy.StrategyAuto
	case "incremental":
		opts.Strategy = daisy.StrategyIncremental
	case "full":
		opts.Strategy = daisy.StrategyFull
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	s := daisy.New(opts)
	defer s.Close()
	if err := s.Register(t); err != nil {
		fatal(err)
	}
	for _, rtext := range rules {
		rule, err := daisy.ParseRule(rtext)
		if err != nil {
			fatal(err)
		}
		if err := s.AddRule(rule); err != nil {
			fatal(err)
		}
	}

	queries := flag.Args()
	if len(queries) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if q := strings.TrimSpace(sc.Text()); q != "" {
				queries = append(queries, q)
			}
		}
	}

	// Ctrl-C cancels the in-flight query via the context path; the session
	// state stays consistent (the canceled query publishes nothing).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var qopts []daisy.QueryOption
	if *timeout > 0 {
		qopts = append(qopts, daisy.WithTimeout(*timeout))
	}
	if *traceFlag {
		qopts = append(qopts, daisy.WithTrace())
	}
	completed := 0
	for _, q := range queries {
		start := time.Now()
		rows, err := s.QueryContext(ctx, q, qopts...)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Printf("-- interrupted during %q (no partial repairs published)\n", q)
				break
			}
			var pe *daisy.ParseError
			if errors.As(err, &pe) {
				fmt.Fprintf(os.Stderr, "daisy-query: %v\n  %s\n  %s^\n",
					pe, q, strings.Repeat(" ", pe.Pos))
				os.Exit(1)
			}
			fatal(err)
		}
		fmt.Printf("-- %s\n-- plan: %s (%d rows, %s)\n", q, rows.Plan(), rows.Len(),
			time.Since(start).Round(time.Microsecond))
		printRows(rows)
		if tr := rows.Trace(); tr != nil {
			fmt.Print(tr.Render())
		}
		if err := rows.Err(); err != nil {
			rows.Close()
			fmt.Printf("-- interrupted enumerating %q\n", q)
			break
		}
		rows.Close()
		completed++
	}
	fmt.Printf("-- %d/%d queries completed; dataset now has %d probabilistic tuples\n",
		completed, len(queries), s.Table(name).DirtyTuples())
}

// printRows streams up to maxRows tuples from the cursor without holding the
// whole result.
func printRows(rows *daisy.Rows) {
	const maxRows = 20
	names := rows.Schema().Names()
	fmt.Println(strings.Join(names, " | "))
	shown := 0
	for rows.Next() {
		if shown >= maxRows {
			fmt.Printf("... (%d more rows)\n", rows.Len()-maxRows)
			return
		}
		tup := rows.Row()
		cells := make([]string, len(names))
		for j := range names {
			cells[j] = tup.Cells[j].String()
		}
		fmt.Println(strings.Join(cells, " | "))
		shown++
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daisy-query:", err)
	os.Exit(1)
}
