// Command daisy-query runs analysis queries over dirty CSV data with
// cleaning weaved into every query — the Daisy experience. Queries come from
// the command line or stdin (one per line).
//
// Usage:
//
//	daisy-query -in cities.csv \
//	    -rule 'phi: !(t1.zip=t2.zip & t1.city!=t2.city)' \
//	    "SELECT zip, city FROM cities WHERE city = 'Los Angeles'"
//
//	cat workload.sql | daisy-query -in cities.csv -rule '...'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"daisy"
)

type ruleList []string

func (r *ruleList) String() string     { return strings.Join(*r, "; ") }
func (r *ruleList) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	in := flag.String("in", "", "dirty CSV file (header row required)")
	strategy := flag.String("strategy", "auto", "cleaning strategy: auto, incremental, full")
	var rules ruleList
	flag.Var(&rules, "rule", "denial constraint (repeatable)")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	name := strings.TrimSuffix(filepath.Base(*in), filepath.Ext(*in))
	t, err := daisy.ReadCSVFile(name, *in)
	if err != nil {
		fatal(err)
	}
	opts := daisy.Options{}
	switch *strategy {
	case "auto":
		opts.Strategy = daisy.StrategyAuto
	case "incremental":
		opts.Strategy = daisy.StrategyIncremental
	case "full":
		opts.Strategy = daisy.StrategyFull
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	s := daisy.New(opts)
	if err := s.Register(t); err != nil {
		fatal(err)
	}
	for _, rtext := range rules {
		rule, err := daisy.ParseRule(rtext)
		if err != nil {
			fatal(err)
		}
		if err := s.AddRule(rule); err != nil {
			fatal(err)
		}
	}

	queries := flag.Args()
	if len(queries) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if q := strings.TrimSpace(sc.Text()); q != "" {
				queries = append(queries, q)
			}
		}
	}
	for _, q := range queries {
		start := time.Now()
		res, err := s.Query(q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("-- %s\n-- plan: %s (%d rows, %s)\n", q, res.Plan, res.Rows.Len(),
			time.Since(start).Round(time.Microsecond))
		printResult(res)
	}
	fmt.Printf("-- dataset now has %d probabilistic tuples\n", s.Table(name).DirtyTuples())
}

func printResult(res *daisy.Result) {
	const maxRows = 20
	names := res.Rows.Schema.Names()
	fmt.Println(strings.Join(names, " | "))
	for i := 0; i < res.Rows.Len() && i < maxRows; i++ {
		cells := make([]string, len(names))
		for j := range names {
			cells[j] = res.Rows.Tuples[i].Cells[j].String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	if res.Rows.Len() > maxRows {
		fmt.Printf("... (%d more rows)\n", res.Rows.Len()-maxRows)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daisy-query:", err)
	os.Exit(1)
}
