package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"daisy/internal/core"
	"daisy/internal/dc"
	"daisy/internal/metrics"
	"daisy/internal/server"
)

const serveRule = "phi@cities: !(t1.zip=t2.zip & t1.city!=t2.city)"

// serveStats accumulates the load run's outcome counts. bodiesCut is the
// serve smoke's core assertion: a 200 NDJSON response whose stream ended
// without a trailer line was dropped mid-body — exactly what graceful drain
// must never do.
type serveStats struct {
	latency *metrics.Histogram // successful query round-trip seconds

	ok          atomic.Int64 // 200 with complete body
	rejected429 atomic.Int64 // queue_full / admission_timeout
	unavail503  atomic.Int64 // draining / session_closed
	refused     atomic.Int64 // transport errors (listener already gone)
	failed      atomic.Int64 // any other status
	bodiesCut   atomic.Int64 // 200 streams missing their trailer
}

// runServe is the HTTP serving benchmark and smoke: a closed-loop load
// generator (mixed query + background-clean traffic) against either an
// in-process server (default) or a running daisy-serve (-url), reporting
// latency quantiles, the 429/503 rates, and whether every response body was
// complete. An uninterrupted in-process run ends with a converged-fingerprint
// check against an in-memory oracle. -phase verify -dir reopens a durable
// tenant root after the fact (CI runs it after SIGTERMing the server
// mid-load) and performs the same oracle comparison offline.
func runServe(ctx context.Context, parallel, totalQueries, rows int, dir, url, phase string) error {
	if rows < 400 {
		return fmt.Errorf("serve: -rows must be >= 400")
	}
	if phase == "verify" {
		return serveVerify(ctx, dir, rows)
	}
	if parallel < 1 {
		return fmt.Errorf("serve: -parallel must be >= 1")
	}

	base := url
	var srv *server.Server
	if base == "" {
		// In-process server on a loopback listener: same code path as
		// daisy-serve, no port to coordinate.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv = server.New(server.Config{
			Root:         dir,
			MaxInflight:  parallel,
			MaxQueue:     2 * parallel,
			QueueTimeout: 2 * time.Second,
		})
		httpSrv := &http.Server{Handler: srv.Handler()}
		go func() { _ = httpSrv.Serve(ln) }()
		defer func() { _ = httpSrv.Close(); srv.Close() }()
		base = "http://" + ln.Addr().String()
	}

	client := &http.Client{}
	if err := serveSeed(ctx, client, base, rows); err != nil {
		return err
	}
	// The marker CI keys its SIGTERM timing off: load starts past this line.
	fmt.Printf("serve: seeded rows=%d url=%s parallel=%d queries=%d\n", rows, base, parallel, totalQueries)

	stats := &serveStats{latency: metrics.NewHistogram(metrics.LatencyBuckets)}
	groups := rows / 4
	start := time.Now()
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				serveOp(ctx, client, base, i, groups, stats)
			}
		}()
	}
dispatch:
	for i := 0; i < totalQueries; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	done := stats.ok.Load() + stats.rejected429.Load() + stats.unavail503.Load() +
		stats.refused.Load() + stats.failed.Load()
	bodiesComplete := stats.bodiesCut.Load() == 0
	ms := func(q float64) float64 { return stats.latency.Quantile(q) * 1000 }
	fmt.Printf("serve: requests=%d ok=%d rejected_429=%d unavailable_503=%d refused=%d failed=%d bodies_complete=%v\n",
		done, stats.ok.Load(), stats.rejected429.Load(), stats.unavail503.Load(),
		stats.refused.Load(), stats.failed.Load(), bodiesComplete)
	fmt.Printf("serve: wall=%s qps=%.1f p50_ms=%.3f p95_ms=%.3f p99_ms=%.3f rate_429=%.3f\n",
		elapsed.Round(time.Millisecond), float64(stats.ok.Load())/elapsed.Seconds(),
		ms(0.50), ms(0.95), ms(0.99),
		float64(stats.rejected429.Load())/float64(max64(done, 1)))
	if !bodiesComplete {
		return fmt.Errorf("serve: %d responses were cut mid-body", stats.bodiesCut.Load())
	}
	if stats.failed.Load() > 0 {
		return fmt.Errorf("serve: %d requests failed with unexpected statuses", stats.failed.Load())
	}

	if ctx.Err() != nil {
		fmt.Println("serve: interrupted; fingerprint_check=skipped")
		return nil
	}
	if err := serveFingerprintCheck(ctx, client, base, rows); err != nil {
		// A server that was SIGTERMed under us drained away mid-run: every
		// in-flight body completed (asserted above), and the durable state
		// check belongs to -phase verify. Only a reachable-but-diverged
		// server is a failure here.
		var unreachable *serverGoneError
		if errors.As(err, &unreachable) {
			fmt.Printf("serve: fingerprint_check=skipped (%v)\n", unreachable.err)
			return nil
		}
		return err
	}
	return nil
}

// serverGoneError marks a fingerprint check that could not run because the
// target server is no longer reachable (drained and exited).
type serverGoneError struct{ err error }

func (e *serverGoneError) Error() string { return fmt.Sprintf("server unreachable: %v", e.err) }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// serveSeed registers the cities relation and FD rule through the admin
// endpoints, the same way an external client would.
func serveSeed(ctx context.Context, client *http.Client, base string, rows int) error {
	var csv bytes.Buffer
	if err := durabilityTable(rows).WriteCSV(&csv); err != nil {
		return err
	}
	for _, step := range []struct{ path, body string }{
		{"/v1/tables?name=cities", csv.String()},
		{"/v1/rules", serveRule},
	} {
		req, err := http.NewRequestWithContext(ctx, "POST", base+step.path, strings.NewReader(step.body))
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return fmt.Errorf("serve: seed %s: %w", step.path, err)
		}
		body := readSmall(resp)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("serve: seed %s: status %d: %s", step.path, resp.StatusCode, body)
		}
	}
	return nil
}

// serveOp issues one operation of the mixed workload: mostly range-scan
// queries, with every tenth op kicking the background cleaner — so drain
// always races live sweep traffic in the smoke.
func serveOp(ctx context.Context, client *http.Client, base string, i, groups int, st *serveStats) {
	var req *http.Request
	var err error
	isQuery := i%10 != 9
	if isQuery {
		span := groups / 20
		lo := (i * 13) % (groups - span)
		q := fmt.Sprintf("SELECT zip, city FROM cities WHERE zip >= %d AND zip < %d", lo, lo+span)
		req, err = http.NewRequestWithContext(ctx, "POST", base+"/v1/query", strings.NewReader(q))
	} else {
		req, err = http.NewRequestWithContext(ctx, "POST", base+"/v1/clean?table=cities&rule=phi", nil)
	}
	if err != nil {
		st.failed.Add(1)
		return
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		// The server went away (drain finished, listener closed) or our own
		// ctx fired: not a protocol violation, the request never started.
		st.refused.Add(1)
		return
	}
	switch resp.StatusCode {
	case http.StatusOK:
		if isQuery {
			if !drainNDJSON(resp) {
				st.bodiesCut.Add(1)
				return
			}
			st.latency.ObserveDuration(time.Since(t0))
		} else {
			readSmall(resp)
		}
		st.ok.Add(1)
	case http.StatusTooManyRequests:
		readSmall(resp)
		st.rejected429.Add(1)
	case http.StatusServiceUnavailable:
		readSmall(resp)
		st.unavail503.Add(1)
	default:
		body := readSmall(resp)
		if st.failed.Add(1) == 1 {
			fmt.Fprintf(os.Stderr, "serve: unexpected status %d: %s\n", resp.StatusCode, body)
		}
	}
}

// drainNDJSON consumes a streaming query response and reports whether it
// ended with the protocol's mandatory trailer ({"done":...} or {"error":...}).
func drainNDJSON(resp *http.Response) bool {
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	last := ""
	for sc.Scan() {
		if t := strings.TrimSpace(sc.Text()); t != "" {
			last = t
		}
	}
	if sc.Err() != nil {
		return false
	}
	return strings.Contains(last, `"done"`) || strings.Contains(last, `"error"`)
}

func readSmall(resp *http.Response) string {
	defer resp.Body.Close()
	var b bytes.Buffer
	_, _ = b.ReadFrom(resp.Body)
	return b.String()
}

// serveOracleFingerprint computes the converged table bytes the served state
// must match: an in-memory session over the identical seed, fully cleaned.
// FD cleaning converges to byte-identical table bytes regardless of
// interleaving, so the oracle is independent of the traffic the server saw.
func serveOracleFingerprint(ctx context.Context, rows int) (string, error) {
	s := core.NewSession(core.Options{Strategy: core.StrategyIncremental})
	defer s.Close()
	if err := s.Register(durabilityTable(rows)); err != nil {
		return "", err
	}
	if err := s.AddRule(dc.FD("phi", "cities", "city", "zip")); err != nil {
		return "", err
	}
	if !s.CleanInBackground("cities", "phi") {
		return "", errors.New("serve: oracle CleanInBackground refused")
	}
	if err := s.WaitCleaning(ctx); err != nil {
		return "", err
	}
	return s.Table("cities").Fingerprint(), nil
}

// serveFingerprintCheck drives the served tenant to quiescence (kick a full
// clean, poll /v1/status until no job is running) and compares its table
// fingerprint against the oracle.
func serveFingerprintCheck(ctx context.Context, client *http.Client, base string, rows int) error {
	req, _ := http.NewRequestWithContext(ctx, "POST", base+"/v1/clean?table=cities&rule=phi", nil)
	if resp, err := client.Do(req); err == nil {
		readSmall(resp)
	}
	deadline := time.Now().Add(2 * time.Minute)
	var status struct {
		Cleaning []struct {
			State string `json:"state"`
		} `json:"cleaning"`
		Fingerprints map[string]string `json:"fingerprints"`
	}
	for {
		req, _ := http.NewRequestWithContext(ctx, "GET", base+"/v1/status?fingerprints=1", nil)
		resp, err := client.Do(req)
		if err != nil {
			return &serverGoneError{err: err}
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			readSmall(resp)
			return &serverGoneError{err: errors.New("server draining")}
		}
		status.Cleaning = nil
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("serve: status decode: %w", err)
		}
		active := false
		for _, job := range status.Cleaning {
			if job.State == "pending" || job.State == "running" || job.State == "paused" {
				active = true
			}
		}
		if !active {
			break
		}
		if time.Now().After(deadline) {
			return errors.New("serve: cleaning did not quiesce within 2m")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
	want, err := serveOracleFingerprint(ctx, rows)
	if err != nil {
		return err
	}
	got := status.Fingerprints["cities"]
	fmt.Printf("serve: converged_fingerprint_match=%v\n", got == want)
	if got != want {
		return errors.New("serve: served state diverged from the in-memory oracle")
	}
	return nil
}

// serveVerify is the offline half of the smoke: reopen the durable tenant
// root the server was killed over, resume/complete its cleaning, and compare
// the recovered table bytes against the oracle.
func serveVerify(ctx context.Context, root string, rows int) error {
	if root == "" {
		return errors.New("serve: -phase verify requires -dir (the server's tenant root)")
	}
	s, err := core.Open(core.Options{Dir: filepath.Join(root, "default")})
	if err != nil {
		return err
	}
	defer s.Close()
	if s.Table("cities") == nil {
		return errors.New("serve: recovered tenant has no cities table — seeding never landed")
	}
	resumed := len(s.CleaningStatus())
	s.CleanInBackground("cities", "phi")
	if err := s.WaitCleaning(ctx); err != nil {
		return err
	}
	got := s.Table("cities").Fingerprint()
	want, err := serveOracleFingerprint(ctx, rows)
	if err != nil {
		return err
	}
	fmt.Printf("serve: resumed_jobs=%d epoch=%d fingerprint_match=%v\n", resumed, s.Epoch(), got == want)
	if got != want {
		return errors.New("serve: recovered state diverged from the in-memory oracle")
	}
	return nil
}
