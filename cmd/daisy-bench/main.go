// Command daisy-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	daisy-bench -exp fig5            # one experiment
//	daisy-bench -exp all             # everything, paper order
//	daisy-bench -exp fig7 -scale 0.5 # smaller datasets
//
// Experiment ids: fig5..fig13, table5..table8.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"daisy/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig5..fig13, table5..table8, all)")
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = full laptop scale)")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	start := time.Now()
	if *exp == "all" {
		reports, err := experiments.All(cfg)
		for _, r := range reports {
			fmt.Println(r)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	} else {
		run, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		r, err := run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(r)
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}
