// Command daisy-bench regenerates the paper's tables and figures, and
// measures concurrent query-serving throughput.
//
// Usage:
//
//	daisy-bench -exp fig5            # one experiment
//	daisy-bench -exp all             # everything, paper order
//	daisy-bench -exp fig7 -scale 0.5 # smaller datasets
//	daisy-bench -exp qps -parallel 8 # concurrent serving throughput
//	daisy-bench -exp bgclean         # tail latency at the §5.2.3 switch
//	daisy-bench -exp segskip         # sweep throughput vs dirty fraction
//	daisy-bench -exp durability -dir /tmp/d -phase run     # durable workload + sweep
//	daisy-bench -exp durability -dir /tmp/d -phase verify  # reopen, resume, check
//	daisy-bench -exp faults                                # ENOSPC mid-load, heal, verify
//
// Experiment ids: fig5..fig13, table5..table8, qps, bgclean, segskip,
// durability, faults.
//
// The durability experiment is the crash-recovery smoke: -phase run opens a
// durable session in -dir, registers a seeded dirty relation, runs queries,
// starts a background sweep, prints `sweep_running=true`, and waits for
// quiescence — CI SIGKILLs it at that marker, mid-sweep. -phase verify
// reopens the directory (replaying WAL and resuming the sweep), waits for
// quiescence, and compares the recovered state fingerprint against an
// uninterrupted in-memory oracle run of the same workload, printing
// `fingerprint_match=true` on success. After its own clean shutdown the
// verify phase also scans the directory for leftover half-published `.tmp`
// checkpoint files and exits non-zero if any remain.
//
// The faults experiment is the degraded-operation smoke: it runs a durable
// workload through an injected ENOSPC (every WAL and checkpoint write fails
// mid-load), confirms the session degrades instead of dying, keeps working
// from memory, heals the disk, re-attaches via a fresh checkpoint, and then
// proves a clean reopen reproduces the exact final state, printing
// `fingerprint_match=true` on success.
//
// The qps experiment serves a fixed FD-cleaning workload from N concurrent
// callers against one session (-parallel; 1 = sequential baseline) and
// reports wall time, queries/second, and a result checksum. The checksum is
// computed from a sequential verification pass over the converged state, so
// it is identical for every -parallel value — racing callers must not change
// per-query results. Speedup vs -parallel 1 requires GOMAXPROCS > 1.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"daisy/internal/core"
	"daisy/internal/dc"
	"daisy/internal/experiments"
	"daisy/internal/ptable"
	"daisy/internal/schema"
	"daisy/internal/table"
	"daisy/internal/value"
	"daisy/internal/vfs"
	"daisy/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig5..fig13, table5..table8, qps, all)")
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = full laptop scale)")
	seed := flag.Int64("seed", 42, "workload seed")
	parallel := flag.Int("parallel", 1, "qps: number of concurrent query callers")
	queries := flag.Int("queries", 400, "qps: total queries across all callers")
	rows := flag.Int("rows", 20000, "qps: relation size")
	dir := flag.String("dir", "", "durability/serve: WAL/checkpoint directory (serve: tenant root)")
	phase := flag.String("phase", "run", "durability/serve: run|verify")
	url := flag.String("url", "", "serve: target a running daisy-serve instead of an in-process server")
	flag.Parse()

	// Ctrl-C cancels in-flight queries through the context path; the qps
	// experiment then reports the partial throughput numbers and exits
	// cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *exp == "qps" {
		if err := runQPS(ctx, *parallel, *queries, *rows, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "bgclean" {
		if err := runBGClean(ctx, *rows); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "segskip" {
		if err := runSegSkip(ctx, *rows); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "durability" {
		if err := runDurability(ctx, *dir, *phase, *rows); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "faults" {
		if err := runFaults(ctx, *dir, *rows); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "serve" {
		if err := runServe(ctx, *parallel, *queries, *rows, *dir, *url, *phase); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	start := time.Now()
	if *exp == "all" {
		reports, err := experiments.All(cfg)
		for _, r := range reports {
			fmt.Println(r)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	} else {
		run, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		r, err := run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(r)
	}
	fmt.Printf("total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}

// runBGClean measures the latency cliff at the §5.2.3 strategy switch: the
// same disjoint-range workload over a modestly dirty relation runs once with
// the inline switch (the triggering query pays the full clean) and once with
// the background sweep (the triggering query cleans only its own scope and
// the sweep publishes one epoch per chunk underneath the remaining queries).
// It reports the switch point, each run's worst per-query latency, the
// triggering query's own latency, and whether the two quiesced states are
// byte-identical — the convergence guarantee CI guards.
func runBGClean(ctx context.Context, rows int) error {
	groups := rows / 4
	if groups < 200 {
		return fmt.Errorf("bgclean: -rows must be >= 800")
	}
	const rangeGroups = 100 // groups per query
	build := func() *table.Table {
		sch := schema.MustNew(
			schema.Column{Name: "orderkey", Kind: value.Int},
			schema.Column{Name: "suppkey", Kind: value.Int},
		)
		tb := table.New("lineorder", sch)
		for g := 0; g < groups; g++ {
			for r := 0; r < 4; r++ {
				supp := int64(1000 + g)
				if g%5 == 0 && r == 3 {
					supp = int64(1000 + groups + g) // unique wrong value
				}
				tb.MustAppend(table.Row{value.NewInt(int64(g)), value.NewInt(supp)})
			}
		}
		return tb
	}
	type runResult struct {
		lats     []time.Duration
		switchAt int
		trigger  time.Duration
		fp       string
	}
	run := func(inline bool) (runResult, error) {
		res := runResult{switchAt: -1}
		s := core.NewSession(core.Options{
			Strategy:               core.StrategyAuto,
			DisableStatsPruning:    true, // every query charges the model: deterministic switch
			DisableBackgroundClean: inline,
		})
		defer s.Close()
		if err := s.Register(build()); err != nil {
			return res, err
		}
		if err := s.AddRule(dc.FD("phi", "lineorder", "suppkey", "orderkey")); err != nil {
			return res, err
		}
		for i, lo := 0, 0; lo < groups; i, lo = i+1, lo+rangeGroups {
			q := fmt.Sprintf("SELECT orderkey, suppkey FROM lineorder WHERE orderkey >= %d AND orderkey < %d",
				lo, lo+rangeGroups)
			t0 := time.Now()
			rs, err := s.QueryContext(ctx, q)
			lat := time.Since(t0)
			if err != nil {
				return res, err
			}
			for _, d := range rs.Decisions() {
				if (d.Strategy == "full" || d.Strategy == "background") && res.switchAt < 0 {
					res.switchAt = i
					res.trigger = lat
				}
			}
			rs.Close()
			res.lats = append(res.lats, lat)
		}
		if err := s.WaitCleaning(ctx); err != nil {
			return res, err
		}
		for _, job := range s.CleaningStatus() {
			fmt.Printf("bgclean: job %s/%s %v %d/%d rows in %d chunks, %d groups, %d backpressure waits\n",
				job.Table, job.Rule, job.State, job.RowsDone, job.RowsTotal,
				job.ChunksDone, job.GroupsCleaned, job.BackpressureWaits)
		}
		res.fp = s.Table("lineorder").Fingerprint()
		return res, nil
	}
	maxLat := func(lats []time.Duration) time.Duration {
		var m time.Duration
		for _, l := range lats {
			if l > m {
				m = l
			}
		}
		return m
	}
	inline, err := run(true)
	if err != nil {
		return err
	}
	async, err := run(false)
	if err != nil {
		return err
	}
	// A workload that never flips measures nothing — fail loudly instead of
	// letting the CI guard pass vacuously on two purely incremental runs.
	if inline.switchAt < 0 || async.switchAt < 0 {
		return fmt.Errorf("bgclean: workload never hit the §5.2.3 switch (inline=q%d async=q%d)",
			inline.switchAt, async.switchAt)
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	fmt.Printf("bgclean: rows=%d queries=%d switch_inline=q%d switch_async=q%d gomaxprocs=%d\n",
		rows, len(inline.lats), inline.switchAt, async.switchAt, runtime.GOMAXPROCS(0))
	fmt.Printf("bgclean: inline_tail_ms=%.3f async_tail_ms=%.3f inline_trigger_ms=%.3f async_trigger_ms=%.3f converged=%v\n",
		ms(maxLat(inline.lats)), ms(maxLat(async.lats)), ms(inline.trigger), ms(async.trigger),
		inline.fp == async.fp)
	return nil
}

// runSegSkip measures background-sweep scan throughput against the fraction
// of dirty storage segments: the same relation shape runs with 0%, 1%, and
// 50% of its segments holding one violating group, each swept to quiescence
// through Session.CleanInBackground. The per-segment anchor counters let the
// sweep skip clean segments wholesale, so throughput should rise steeply as
// the dirty fraction falls. Every run's quiesced state is fingerprint-checked
// against an inline incremental covering clean of an identical relation —
// the convergence guarantee that makes the skip path safe to ship.
func runSegSkip(ctx context.Context, rows int) error {
	segSize := ptable.SegmentSize
	segs := rows / segSize
	if segs < 4 {
		return fmt.Errorf("segskip: -rows must be >= %d (4 segments)", 4*segSize)
	}
	rows = segs * segSize
	build := func(dirtyPct int) *table.Table {
		sch := schema.MustNew(
			schema.Column{Name: "zip", Kind: value.Int},
			schema.Column{Name: "city", Kind: value.String},
		)
		tb := table.New("cities", sch)
		stride := 0
		if dirtyPct > 0 {
			stride = 100 / dirtyPct
		}
		for i := 0; i < rows; i++ {
			city := "LA"
			if stride > 0 && (i/segSize)%stride == 0 && i%segSize == 0 {
				city = "SF" // first group of a dirty segment breaks phi
			}
			tb.MustAppend(table.Row{value.NewInt(int64(i / 4)), value.NewString(city)})
		}
		return tb
	}
	rule := func() *dc.Constraint { return dc.FD("phi", "cities", "city", "zip") }
	allConverged := true
	for _, pct := range []int{0, 1, 50} {
		// Inline incremental reference: the convergence target bytes.
		ref := core.NewSession(core.Options{Strategy: core.StrategyIncremental, DisableStatsPruning: true})
		if err := ref.Register(build(pct)); err != nil {
			return err
		}
		if err := ref.AddRule(rule()); err != nil {
			return err
		}
		if _, err := ref.Query("SELECT zip, city FROM cities WHERE zip >= 0"); err != nil {
			ref.Close()
			return err
		}
		want := ref.Table("cities").Fingerprint()
		ref.Close()

		s := core.NewSession(core.Options{})
		if err := s.Register(build(pct)); err != nil {
			s.Close()
			return err
		}
		if err := s.AddRule(rule()); err != nil {
			s.Close()
			return err
		}
		t0 := time.Now()
		if !s.CleanInBackground("cities", "phi") {
			s.Close()
			return fmt.Errorf("segskip: CleanInBackground refused the sweep")
		}
		if err := s.WaitCleaning(ctx); err != nil {
			s.Close()
			return err
		}
		wall := time.Since(t0)
		jobs := s.CleaningStatus()
		job := jobs[len(jobs)-1]
		converged := s.Table("cities").Fingerprint() == want
		allConverged = allConverged && converged
		fmt.Printf("segskip: dirty=%d%% rows=%d sweep_ms=%.3f rows_per_s=%.0f chunks=%d groups=%d converged=%v\n",
			pct, rows, float64(wall)/float64(time.Millisecond),
			float64(rows)/wall.Seconds(), job.ChunksDone, job.GroupsCleaned, converged)
		s.Close()
	}
	if !allConverged {
		return fmt.Errorf("segskip: a sweep diverged from the inline reference bytes")
	}
	return nil
}

// durabilityTable builds the durability experiment's relation: zip groups of
// four rows, every group carrying one row-unique typo, so both the query
// repairs and the background sweep have deterministic work in every group.
func durabilityTable(rows int) *table.Table {
	sch := schema.MustNew(
		schema.Column{Name: "zip", Kind: value.Int},
		schema.Column{Name: "city", Kind: value.String},
	)
	groups := rows / 4
	tb := table.New("cities", sch)
	for i := 0; i < rows; i++ {
		city := "City-" + fmt.Sprint(i%groups)
		if i%4 == 3 {
			city = "Typo-" + fmt.Sprint(i)
		}
		tb.MustAppend(table.Row{value.NewInt(int64(i % groups)), value.NewString(city)})
	}
	return tb
}

// runDurability is the crash-recovery smoke behind CI's durability job. The
// run phase journals a deterministic workload (register + FD rule + range
// queries) into -dir, starts a full background sweep, announces
// sweep_running=true, and waits — the harness SIGKILLs it there, mid-sweep.
// The verify phase reopens the directory: recovery replays the WAL, resumes
// the interrupted sweep from its checked-set bookkeeping, and after
// quiescence the durable state fingerprint must equal an uninterrupted
// in-memory oracle run of the same workload.
func runDurability(ctx context.Context, dir, phase string, rows int) error {
	if dir == "" {
		return fmt.Errorf("durability: -dir is required")
	}
	if rows < 400 {
		return fmt.Errorf("durability: -rows must be >= 400")
	}
	queries := []string{
		"SELECT zip, city FROM cities WHERE zip < 50",
		"SELECT zip, city FROM cities WHERE zip >= 50 AND zip < 100",
	}
	rule := func() *dc.Constraint { return dc.FD("phi", "cities", "city", "zip") }
	workload := func(s *core.Session) error {
		if s.Table("cities") == nil {
			if err := s.Register(durabilityTable(rows)); err != nil {
				return err
			}
			if err := s.AddRule(rule()); err != nil {
				return err
			}
		}
		for _, q := range queries {
			rs, err := s.QueryContext(ctx, q)
			if err != nil {
				return err
			}
			rs.Close()
		}
		s.CleanInBackground("cities", "phi")
		return nil
	}
	switch phase {
	case "run":
		s, err := core.Open(core.Options{Dir: dir, Strategy: core.StrategyIncremental})
		if err != nil {
			return err
		}
		defer s.Close()
		if err := workload(s); err != nil {
			return err
		}
		// The marker the harness kills on: the sweep is live past this line.
		fmt.Printf("durability: sweep_running=true dir=%s rows=%d\n", dir, rows)
		if err := s.WaitCleaning(ctx); err != nil {
			return err
		}
		fmt.Println("durability: sweep completed without interruption")
		return nil
	case "verify":
		s, err := core.Open(core.Options{Dir: dir, Strategy: core.StrategyIncremental})
		if err != nil {
			return err
		}
		defer s.Close()
		resumed := len(s.CleaningStatus())
		// Re-requesting the sweep is a no-op when recovery already resumed
		// it, and covers the window where the kill landed after quiescence.
		s.CleanInBackground("cities", "phi")
		if err := s.WaitCleaning(ctx); err != nil {
			return err
		}
		got := s.StateFingerprint()

		oracle := core.NewSession(core.Options{Strategy: core.StrategyIncremental})
		defer oracle.Close()
		if err := workload(oracle); err != nil {
			return err
		}
		if err := oracle.WaitCleaning(ctx); err != nil {
			return err
		}
		want := oracle.StateFingerprint()
		fmt.Printf("durability: resumed_jobs=%d epoch=%d fingerprint_match=%v\n",
			resumed, s.Epoch(), got == want)
		if got != want {
			return fmt.Errorf("durability: recovered state diverged from the oracle run")
		}
		// A clean shutdown must leave no half-published checkpoint behind —
		// every .tmp is either renamed into place or removed on the error
		// path. (Before this Close, a leftover is legitimate: the run phase
		// was SIGKILLed and may have died mid-publication.)
		s.Close()
		leftovers, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
		if err != nil {
			return err
		}
		if len(leftovers) > 0 {
			return fmt.Errorf("durability: %d leftover .tmp checkpoint file(s) after clean shutdown: %v",
				len(leftovers), leftovers)
		}
		fmt.Println("durability: clean shutdown left no .tmp files")
		return nil
	default:
		return fmt.Errorf("durability: unknown -phase %q (run|verify)", phase)
	}
}

// runFaults is the degraded-operation smoke behind CI's chaos job: a durable
// workload hits a full disk mid-load (every WAL and checkpoint write returns
// ENOSPC), the session degrades rather than dying, serves further mutating
// work from memory, and — once the fault clears — re-attaches through a
// fresh full checkpoint. A clean reopen of the directory must then reproduce
// the exact final state: the degraded window lost nothing that survived to
// re-attach.
func runFaults(ctx context.Context, dir string, rows int) error {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "daisy-faults-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	if rows < 800 {
		return fmt.Errorf("faults: -rows must be >= 800")
	}
	ffs := vfs.NewFaultFS(vfs.OS{})
	s, err := core.Open(core.Options{
		Dir:      dir,
		Strategy: core.StrategyIncremental,
		FS:       ffs,
		// Degrade on the first failed append: the smoke tests the degraded
		// path, not the retry loop (the core chaos suite covers retries).
		WALRetries: -1,
	})
	if err != nil {
		return err
	}
	defer s.Close()
	if err := s.Register(durabilityTable(rows)); err != nil {
		return err
	}
	if err := s.AddRule(dc.FD("phi", "cities", "city", "zip")); err != nil {
		return err
	}
	query := func(lo, hi int) error {
		q := fmt.Sprintf("SELECT zip, city FROM cities WHERE zip >= %d AND zip < %d", lo, hi)
		rs, err := s.QueryContext(ctx, q)
		if err != nil {
			return err
		}
		rs.Close()
		return nil
	}
	// Healthy load: the first query's repairs journal normally.
	if err := query(0, 50); err != nil {
		return err
	}

	// Disk fills mid-load: every WAL and checkpoint write now fails.
	ffs.Arm(vfs.Fault{
		Count: -1,
		Err:   vfs.ENOSPC("disk"),
		Match: func(op vfs.Op, name string) bool {
			base := filepath.Base(name)
			return op == vfs.OpWrite &&
				(strings.HasPrefix(base, "wal-") || strings.HasPrefix(base, "ckpt-"))
		},
	})
	if err := query(50, 100); err != nil {
		return fmt.Errorf("faults: query under ENOSPC must degrade, not fail: %w", err)
	}
	if st := s.DurabilityState(); st != core.DurabilityDegraded {
		return fmt.Errorf("faults: state after failed append = %s, want degraded", st)
	}
	fmt.Printf("faults: injected=ENOSPC state=%s err=%q\n",
		s.DurabilityState(), s.DurabilityError())
	// Degraded service: mutating queries keep working from memory.
	if err := query(100, 150); err != nil {
		return fmt.Errorf("faults: degraded session refused memory-only work: %w", err)
	}

	// Disk heals; a full checkpoint covers the degraded window and re-attaches.
	ffs.Disarm()
	if err := s.Checkpoint(); err != nil {
		return fmt.Errorf("faults: re-attach checkpoint failed: %w", err)
	}
	if st := s.DurabilityState(); st != core.DurabilityReattached && st != core.DurabilityHealthy {
		return fmt.Errorf("faults: state after heal = %s, want reattached", st)
	}
	fmt.Printf("faults: healed state=%s faults_fired=%d\n", s.DurabilityState(), ffs.Fired())

	// Post-heal load journals into the fresh log; quiesce and snapshot.
	if err := query(150, 200); err != nil {
		return err
	}
	s.CleanInBackground("cities", "phi")
	if err := s.WaitCleaning(ctx); err != nil {
		return err
	}
	want := s.StateFingerprint()
	s.Close()

	// The proof: a clean reopen replays to the exact final state.
	r, err := core.Open(core.Options{Dir: dir, Strategy: core.StrategyIncremental})
	if err != nil {
		return err
	}
	defer r.Close()
	got := r.StateFingerprint()
	fmt.Printf("faults: rows=%d ops=%d fingerprint_match=%v\n", rows, ffs.Ops(), got == want)
	if got != want {
		return fmt.Errorf("faults: recovered state diverged from the pre-close state")
	}
	return nil
}

// runQPS serves an FD-cleaning workload from `parallel` goroutines over one
// shared session. Early queries carry repair work; once the dataset
// converges the workload is read-mostly — the regime the snapshot epochs are
// built for.
func runQPS(ctx context.Context, parallel, totalQueries, rows int, seed int64) error {
	if parallel < 1 {
		return fmt.Errorf("qps: -parallel must be >= 1")
	}
	lo := workload.Lineorder(workload.SSBConfig{
		Rows: rows, DistinctOrders: rows / 5, DistinctSupps: rows / 50, Seed: seed,
	})
	workload.InjectFDErrors(lo, "orderkey", "suppkey", 0.4, 0.2, seed+1)

	// Inter-query parallelism is the product under test: give each query a
	// single worker so callers don't fight over cores.
	intra := runtime.GOMAXPROCS(0) / parallel
	if intra < 1 {
		intra = 1
	}
	s := core.NewSession(core.Options{
		Strategy:             core.StrategyIncremental,
		Workers:              intra,
		MaxConcurrentQueries: parallel,
	})
	defer s.Close()
	if err := s.Register(lo); err != nil {
		return err
	}
	if err := s.AddRule(dc.FD("phi", "lineorder", "suppkey", "orderkey")); err != nil {
		return err
	}

	domain := rows / 5
	queryAt := func(i int) string {
		span := domain / 40
		lo := (i * 13) % (domain - span)
		return fmt.Sprintf("SELECT orderkey, suppkey FROM lineorder WHERE orderkey >= %d AND orderkey <= %d", lo, lo+span)
	}

	start := time.Now()
	var wg sync.WaitGroup
	var completed atomic.Int64
	errCh := make(chan error, parallel)
	next := make(chan int)
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			failed := false
			for i := range next {
				if failed {
					continue // keep draining so the dispatcher never blocks
				}
				res, err := s.QueryContext(ctx, queryAt(i))
				switch {
				case err == nil:
					res.Close()
					completed.Add(1)
				case errors.Is(err, context.Canceled):
					failed = true // interrupted: drain quietly
				default:
					errCh <- err
					failed = true
				}
			}
		}()
	}
	for i := 0; i < totalQueries; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return err
	}
	elapsed := time.Since(start)
	if ctx.Err() != nil {
		// Interrupted: report partial metrics and exit cleanly. The session
		// state is consistent — canceled queries published nothing.
		done := completed.Load()
		fmt.Printf("qps workload interrupted: %d/%d queries completed, parallel=%d\n",
			done, totalQueries, parallel)
		fmt.Printf("wall=%s qps=%.1f epoch=%d (partial)\n",
			elapsed.Round(time.Millisecond), float64(done)/elapsed.Seconds(), s.Epoch())
		return nil
	}

	// Verification pass: re-run every distinct query sequentially over the
	// converged state and fold result fingerprints plus the final table
	// state into one checksum. Identical across -parallel values.
	h := fnv.New64a()
	for i := 0; i < totalQueries; i++ {
		res, err := s.Query(queryAt(i))
		if err != nil {
			return err
		}
		fmt.Fprintf(h, "%d:%d\n", i, res.Rows.Len())
		h.Write([]byte(res.Rows.Fingerprint()))
	}
	h.Write([]byte(s.Table("lineorder").Fingerprint()))

	qps := float64(totalQueries) / elapsed.Seconds()
	fmt.Printf("qps workload: %d queries, %d rows, parallel=%d, workers/query=%d, gomaxprocs=%d\n",
		totalQueries, rows, parallel, intra, runtime.GOMAXPROCS(0))
	fmt.Printf("wall=%s qps=%.1f epoch=%d checksum=%016x\n",
		elapsed.Round(time.Millisecond), qps, s.Epoch(), h.Sum64())
	return nil
}
